// Tests for Observation: state transitions, benefit accounting against the
// from-scratch Eq. (1) recomputation, FoF upgrades, retries, and the World.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "sim/world.h"
#include "util/rng.h"

namespace recon::sim {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

// Star: center 0 with leaves 1..4; all targets; probabilities 1.
Problem star_problem() {
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.add_edge(0, v, 1.0);
  Problem p;
  p.graph = b.build();
  p.targets = {0, 1, 2, 3, 4};
  p.is_target.assign(5, 1);
  p.benefit = make_paper_benefit(p.graph, p.is_target);
  p.acceptance = make_constant_acceptance(0.5);
  p.validate();
  return p;
}

TEST(Observation, InitialState) {
  const Problem p = star_problem();
  Observation obs(p);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(obs.node_state(u), NodeState::kUnknown);
    EXPECT_FALSE(obs.is_friend(u));
    EXPECT_FALSE(obs.is_fof(u));
    EXPECT_EQ(obs.attempts(u), 0u);
    EXPECT_EQ(obs.mutual_friends(u), 0u);
  }
  EXPECT_DOUBLE_EQ(obs.benefit().total(), 0.0);
  for (graph::EdgeId e = 0; e < p.graph.num_edges(); ++e) {
    EXPECT_EQ(obs.edge_state(e), EdgeState::kUnknown);
    EXPECT_DOUBLE_EQ(obs.edge_belief(e), 1.0);
  }
}

TEST(Observation, AcceptCenterRevealsStar) {
  const Problem p = star_problem();
  Observation obs(p);
  const std::vector<NodeId> true_nbrs{1, 2, 3, 4};
  const BenefitBreakdown d = obs.record_accept(0, true_nbrs);
  EXPECT_TRUE(obs.is_friend(0));
  EXPECT_EQ(obs.node_state(0), NodeState::kAccepted);
  // Friend benefit 1 (target), four FoFs at 0.5 each, four edges.
  EXPECT_DOUBLE_EQ(d.friends, 1.0);
  EXPECT_DOUBLE_EQ(d.fofs, 2.0);
  // M = 4 (center's expected degree); both-endpoint-target edges: 4/4 = 1.
  EXPECT_DOUBLE_EQ(d.edges, 4.0);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_TRUE(obs.is_fof(v));
    EXPECT_EQ(obs.mutual_friends(v), 1u);
  }
  // Incremental accounting matches from-scratch Eq. (1).
  const BenefitBreakdown r = obs.recompute_benefit();
  EXPECT_DOUBLE_EQ(r.friends, obs.benefit().friends);
  EXPECT_DOUBLE_EQ(r.fofs, obs.benefit().fofs);
  EXPECT_DOUBLE_EQ(r.edges, obs.benefit().edges);
}

TEST(Observation, FofUpgradeReplacesBenefit) {
  const Problem p = star_problem();
  Observation obs(p);
  obs.record_accept(0, std::vector<NodeId>{1, 2, 3, 4});
  const double before = obs.benefit().total();
  // Leaf 1 now accepts: gains Bf(1) = 1, loses Bfof(1) = 0.5; no new edges
  // (edge 0-1 already revealed), no new FoFs (leaf has no other neighbors).
  const BenefitBreakdown d = obs.record_accept(1, std::vector<NodeId>{0});
  EXPECT_DOUBLE_EQ(d.friends, 1.0);
  EXPECT_DOUBLE_EQ(d.fofs, -0.5);
  EXPECT_DOUBLE_EQ(d.edges, 0.0);
  EXPECT_DOUBLE_EQ(obs.benefit().total(), before + 0.5);
  EXPECT_FALSE(obs.is_fof(1));
  EXPECT_TRUE(obs.is_friend(1));
  const BenefitBreakdown r = obs.recompute_benefit();
  EXPECT_DOUBLE_EQ(r.total(), obs.benefit().total());
}

TEST(Observation, RejectTracksAttempts) {
  const Problem p = star_problem();
  Observation obs(p);
  obs.record_reject(2);
  EXPECT_EQ(obs.node_state(2), NodeState::kRejected);
  EXPECT_EQ(obs.attempts(2), 1u);
  EXPECT_FALSE(obs.requestable(2, /*allow_retries=*/false));
  EXPECT_TRUE(obs.requestable(2, /*allow_retries=*/true));
  obs.record_reject(2);
  EXPECT_EQ(obs.attempts(2), 2u);
}

TEST(Observation, AbsentEdgesRevealed) {
  const Problem p = star_problem();
  Observation obs(p);
  // Center accepts but only 1 and 2 are true neighbors.
  obs.record_accept(0, std::vector<NodeId>{1, 2});
  EXPECT_EQ(obs.edge_state(p.graph.find_edge(0, 1)), EdgeState::kPresent);
  EXPECT_EQ(obs.edge_state(p.graph.find_edge(0, 3)), EdgeState::kAbsent);
  EXPECT_DOUBLE_EQ(obs.edge_belief(p.graph.find_edge(0, 3)), 0.0);
  EXPECT_FALSE(obs.is_fof(3));
  EXPECT_TRUE(obs.is_fof(1));
  const auto r = obs.recompute_benefit();
  EXPECT_DOUBLE_EQ(r.total(), obs.benefit().total());
}

TEST(Observation, FriendOfTwoCountedOnce) {
  // Triangle 0-1-2 plus target 3 adjacent to both 1 and 2.
  GraphBuilder b(4);
  b.add_edge(1, 3, 1.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(1, 2, 1.0);
  Problem p;
  p.graph = b.build();
  p.targets = {3};
  p.is_target = {0, 0, 0, 1};
  p.benefit = make_paper_benefit(p.graph, p.is_target);
  p.acceptance = make_constant_acceptance(1.0);
  p.validate();

  Observation obs(p);
  obs.record_accept(1, std::vector<NodeId>{2, 3});
  EXPECT_TRUE(obs.is_fof(3));
  const double after_first = obs.benefit().fofs;
  obs.record_accept(2, std::vector<NodeId>{1, 3});
  // 3 was already a FoF: no double counting.
  EXPECT_DOUBLE_EQ(obs.benefit().fofs, after_first);
  EXPECT_EQ(obs.mutual_friends(3), 2u);
  const auto r = obs.recompute_benefit();
  EXPECT_DOUBLE_EQ(r.total(), obs.benefit().total());
}

TEST(Observation, AcceptingFriendTwiceThrows) {
  const Problem p = star_problem();
  Observation obs(p);
  obs.record_accept(0, std::vector<NodeId>{1});
  EXPECT_THROW(obs.record_accept(0, std::vector<NodeId>{1}), std::logic_error);
  EXPECT_THROW(obs.record_reject(0), std::logic_error);
}

TEST(Observation, MutualBoostReflectedInAcceptanceProb) {
  Problem p = star_problem();
  p.acceptance.mutual_boost = 0.5;
  Observation obs(p);
  const double before = obs.acceptance_prob(1);
  obs.record_accept(0, std::vector<NodeId>{1, 2, 3, 4});
  const double after = obs.acceptance_prob(1);
  EXPECT_GT(after, before);
}

TEST(World, EdgeSamplingMatchesProbabilities) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 0.3);
  Problem p;
  p.graph = b.build();
  p.targets = {};
  p.is_target.assign(2, 0);
  p.benefit = make_paper_benefit(p.graph, p.is_target);
  p.acceptance = make_constant_acceptance(0.5);
  int exist = 0;
  const int n = 5000;
  for (int s = 0; s < n; ++s) {
    const World w(p, util::derive_seed(99, s));
    exist += w.edge_exists(0);
  }
  EXPECT_NEAR(static_cast<double>(exist) / n, 0.3, 0.03);
}

TEST(World, DeterministicInSeed) {
  const Problem p = star_problem();
  const World a(p, 123), b(p, 123), c(p, 124);
  for (graph::EdgeId e = 0; e < p.graph.num_edges(); ++e) {
    EXPECT_EQ(a.edge_exists(e), b.edge_exists(e));
  }
  EXPECT_EQ(a.attempt_accept(0, 0, 0.5), b.attempt_accept(0, 0, 0.5));
  (void)c;  // different seed: no assertion, just must construct
}

TEST(World, AttemptAcceptRespectsProbability) {
  const Problem p = star_problem();
  const World w(p, 7);
  int acc = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) acc += w.attempt_accept(1, static_cast<std::uint32_t>(i), 0.4);
  EXPECT_NEAR(static_cast<double>(acc) / n, 0.4, 0.03);
  // Pure function: same (node, attempt) gives same answer.
  EXPECT_EQ(w.attempt_accept(1, 5, 0.4), w.attempt_accept(1, 5, 0.4));
}

TEST(World, RetriesAreIndependentDraws) {
  const Problem p = star_problem();
  // Across many worlds, a node rejected on attempt 0 should accept on
  // attempt 1 with roughly the base rate.
  int rejected_then_accepted = 0, rejected = 0;
  for (int s = 0; s < 4000; ++s) {
    const World w(p, util::derive_seed(55, s));
    if (!w.attempt_accept(2, 0, 0.5)) {
      ++rejected;
      rejected_then_accepted += w.attempt_accept(2, 1, 0.5);
    }
  }
  ASSERT_GT(rejected, 500);
  EXPECT_NEAR(static_cast<double>(rejected_then_accepted) / rejected, 0.5, 0.05);
}

TEST(World, TrueNeighborsSortedSubset) {
  ProblemOptions opts;
  opts.num_targets = 10;
  opts.seed = 4;
  const Problem p = make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(80, 3, 2),
                               graph::EdgeProbModel::uniform(0.2, 0.9), 3),
      opts);
  const World w(p, 17);
  for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
    const auto tn = w.true_neighbors(u);
    EXPECT_TRUE(std::is_sorted(tn.begin(), tn.end()));
    const auto nbrs = p.graph.neighbors(u);
    for (NodeId v : tn) {
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), v), nbrs.end());
    }
  }
  EXPECT_LE(w.num_existing_edges(), static_cast<std::size_t>(p.graph.num_edges()));
  EXPECT_GT(w.num_existing_edges(), 0u);
}

// Property sweep: on random graphs, incremental benefit accounting always
// matches the from-scratch recomputation after arbitrary accept/reject
// sequences.
class AccountingProperty : public ::testing::TestWithParam<int> {};

TEST_P(AccountingProperty, IncrementalMatchesRecompute) {
  const int seed = GetParam();
  ProblemOptions opts;
  opts.num_targets = 15;
  opts.seed = static_cast<std::uint64_t>(seed);
  const Problem p = make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(60, 150, seed),
                               graph::EdgeProbModel::uniform(0.2, 1.0), seed + 1),
      opts);
  const World w(p, static_cast<std::uint64_t>(seed) * 31 + 7);
  Observation obs(p);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int step = 0; step < 30; ++step) {
    const auto u = static_cast<NodeId>(rng.below(60));
    if (obs.is_friend(u)) continue;
    if (w.attempt_accept(u, obs.attempts(u), obs.acceptance_prob(u))) {
      obs.record_accept(u, w.true_neighbors(u));
    } else {
      obs.record_reject(u);
    }
    const auto r = obs.recompute_benefit();
    ASSERT_NEAR(r.friends, obs.benefit().friends, 1e-9);
    ASSERT_NEAR(r.fofs, obs.benefit().fofs, 1e-9);
    ASSERT_NEAR(r.edges, obs.benefit().edges, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace recon::sim
