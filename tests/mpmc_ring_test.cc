// MPMC injection-ring tests: Vyukov ring unit behavior, multi-producer /
// multi-consumer stress (no loss, no duplication), and the ThreadPool
// external-submit shutdown contract the ring backs (a task accepted before
// the destructor either runs or its future reports broken_promise).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/mpmc_ring.h"
#include "util/thread_pool.h"

namespace recon::util {
namespace {

TEST(MpmcRing, FifoSingleThread) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(MpmcRing, FullRejectsAndDrainReopens) {
  MpmcRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  int v = -1;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.try_push(99));  // slot freed
  // Remaining order: 1, 2, 3, 99.
  const int want[] = {1, 2, 3, 99};
  for (int expected : want) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, expected);
  }
}

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  MpmcRing<int> ring(5);  // rounds to 8
  int pushed = 0;
  while (ring.try_push(pushed)) ++pushed;
  EXPECT_EQ(pushed, 8);
}

TEST(MpmcRing, DestructorReleasesRemainingValues) {
  auto tracked = std::make_shared<int>(7);
  {
    MpmcRing<std::shared_ptr<int>> ring(4);
    ASSERT_TRUE(ring.try_push(tracked));
    ASSERT_TRUE(ring.try_push(tracked));
    EXPECT_EQ(tracked.use_count(), 3);
  }
  EXPECT_EQ(tracked.use_count(), 1);
}

TEST(MpmcRingStress, MultiProducerMultiConsumerLosesNothing) {
  // 4 producers × 20k distinct values through a 256-slot ring, drained by 4
  // consumers. Checksum + count catch loss and duplication alike.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  MpmcRing<std::uint64_t> ring(256);
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v = 0;
      while (consumed.load(std::memory_order_relaxed) < kTotal) {
        if (ring.try_pop(v)) {
          sum.fetch_add(v, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);  // values were 0..kTotal-1
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));
}

TEST(ThreadPoolInjection, ExternalSubmitCompletesFromNonWorkerThread) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  std::thread external([&] {
    for (int i = 0; i < 100; ++i) {
      futs.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
  });
  external.join();
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolInjection, ShutdownRunsOrBreaksEveryAcceptedTask) {
  // Queue slow external tasks behind a single worker, then destroy the pool
  // mid-backlog: every future must either complete (the task ran) or throw
  // future_error{broken_promise} (the task was destroyed unrun). A hang or a
  // silent drop fails; this is the pin for the injection-ring shutdown race.
  std::vector<std::future<void>> futs;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      futs.push_back(pool.submit([&ran] {
        ran.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }));
    }
  }
  int completed = 0;
  int broken = 0;
  for (auto& f : futs) {
    try {
      f.get();
      ++completed;
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
      ++broken;
    }
  }
  EXPECT_EQ(completed + broken, 64);
  EXPECT_EQ(ran.load(), completed);
}

}  // namespace
}  // namespace recon::util
