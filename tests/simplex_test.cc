// Tests for the dense two-phase simplex solver, including randomized
// cross-validation against brute-force vertex enumeration on small LPs.
#include <gtest/gtest.h>

#include <cmath>

#include "solver/simplex.h"
#include "util/rng.h"

namespace recon::solver {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 -> 36 at (2,6).
  LpProblem lp;
  lp.objective = {3.0, 5.0};
  lp.add_row({1.0, 0.0}, RowType::kLe, 4.0);
  lp.add_row({0.0, 2.0}, RowType::kLe, 12.0);
  lp.add_row({3.0, 2.0}, RowType::kLe, 18.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 -> 5 (e.g. x=3, y=2).
  LpProblem lp;
  lp.objective = {1.0, 1.0};
  lp.add_row({1.0, 1.0}, RowType::kEq, 5.0);
  lp.add_row({1.0, 0.0}, RowType::kLe, 3.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 5.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min x (as max -x) s.t. x >= 2.5 -> x = 2.5.
  LpProblem lp;
  lp.objective = {-1.0};
  lp.add_row({1.0}, RowType::kGe, 2.5);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.5, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  lp.objective = {1.0};
  lp.add_row({1.0}, RowType::kLe, 1.0);
  lp.add_row({1.0}, RowType::kGe, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  lp.objective = {1.0, 0.0};
  lp.add_row({0.0, 1.0}, RowType::kLe, 1.0);  // x unconstrained above
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // max -x s.t. -x <= -2  (i.e. x >= 2) -> x = 2.
  LpProblem lp;
  lp.objective = {-1.0};
  lp.add_row({-1.0}, RowType::kLe, -2.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone instance; Bland's rule must terminate.
  LpProblem lp;
  lp.objective = {0.75, -150.0, 0.02, -6.0};
  lp.add_row({0.25, -60.0, -0.04, 9.0}, RowType::kLe, 0.0);
  lp.add_row({0.5, -90.0, -0.02, 3.0}, RowType::kLe, 0.0);
  lp.add_row({0.0, 0.0, 1.0, 0.0}, RowType::kLe, 1.0);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.05, 1e-7);
}

TEST(Simplex, UpperBoundHelper) {
  LpProblem lp;
  lp.objective = {1.0};
  lp.add_upper_bound(0, 0.75);
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.75, 1e-9);
  EXPECT_THROW(lp.add_upper_bound(3, 1.0), std::invalid_argument);
}

TEST(Simplex, RejectsMalformedRow) {
  LpProblem lp;
  lp.objective = {1.0, 2.0};
  EXPECT_THROW(lp.add_row({1.0}, RowType::kLe, 1.0), std::invalid_argument);
}

// Randomized property test: on box-constrained LPs (0 <= x <= u) with <=
// rows, compare against dense grid enumeration of the box corners plus
// constraint intersections is hard; instead verify optimality conditions:
// the returned point is feasible and no coordinate ascent direction
// improves (sufficient for box-plus-few-rows instances tested against a
// fine random search).
class SimplexRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom, FeasibleAndBeatsRandomSearch) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4;
  LpProblem lp;
  lp.objective.resize(n);
  for (auto& c : lp.objective) c = rng.uniform(-1.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) lp.add_upper_bound(i, rng.uniform(0.5, 2.0));
  for (int r = 0; r < 3; ++r) {
    std::vector<double> row(n);
    for (auto& a : row) a = rng.uniform(0.0, 1.0);
    lp.add_row(std::move(row), RowType::kLe, rng.uniform(0.5, 2.5));
  }
  const LpResult res = solve_lp(lp);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  // Feasibility.
  for (std::size_t r = 0; r < lp.num_rows(); ++r) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) lhs += lp.rows[r][j] * res.x[j];
    EXPECT_LE(lhs, lp.rhs[r] + 1e-7);
  }
  for (double xj : res.x) EXPECT_GE(xj, -1e-9);
  // No random feasible point beats it.
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<double> x(n);
    for (std::size_t j = 0; j < n; ++j) x[j] = rng.uniform(0.0, 2.0);
    bool feasible = true;
    for (std::size_t r = 0; r < lp.num_rows() && feasible; ++r) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += lp.rows[r][j] * x[j];
      feasible = lhs <= lp.rhs[r];
    }
    if (!feasible) continue;
    double val = 0.0;
    for (std::size_t j = 0; j < n; ++j) val += lp.objective[j] * x[j];
    ASSERT_LE(val, res.objective + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom, ::testing::Range(1, 13));

}  // namespace
}  // namespace recon::solver
