// Tests for the defender-side detection models, including the varying-k
// evasion story the paper motivates (Sec. IV-C).
#include <gtest/gtest.h>

#include <memory>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "defense/detector.h"
#include "graph/generators.h"
#include "sim/problem.h"

namespace recon::defense {
namespace {

using graph::NodeId;

sim::AttackTrace synthetic_trace(const std::vector<std::size_t>& batch_sizes,
                                 double select_seconds = 0.0) {
  sim::AttackTrace t;
  NodeId next = 0;
  double q = 0.0, cost = 0.0;
  for (std::size_t size : batch_sizes) {
    sim::BatchRecord b;
    for (std::size_t i = 0; i < size; ++i) {
      b.requests.push_back(next++);
      b.accepted.push_back(1);
    }
    q += static_cast<double>(size);
    cost += static_cast<double>(size);
    b.delta.friends = static_cast<double>(size);
    b.cumulative.friends = q;
    b.cost = static_cast<double>(size);
    b.cumulative_cost = cost;
    b.select_seconds = select_seconds;
    t.batches.push_back(std::move(b));
  }
  return t;
}

TEST(RequestTimes, BatchesShareSendTime) {
  const auto t = synthetic_trace({2, 3}, 1.0);
  const auto times = request_times(t, 10.0);
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  // second batch: 1.0 (sel) + 10 (delay) + 1.0 (sel) = 12.
  EXPECT_DOUBLE_EQ(times[2], 12.0);
  EXPECT_DOUBLE_EQ(times[4], 12.0);
}

TEST(RateLimit, DetectsBurstAboveThreshold) {
  const RateLimitDetector detector(20, 3600.0);  // Yang et al.'s rule
  // 25 requests in one batch -> instant detection.
  const auto burst = synthetic_trace({25});
  const auto r = detector.evaluate(burst, 86400.0);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.requests_sent, 25u);
  EXPECT_DOUBLE_EQ(r.benefit_before, 0.0);  // caught on the first batch
}

TEST(RateLimit, DailyBatchesOf15Evade) {
  const RateLimitDetector detector(20, 3600.0);
  // 15-request batches separated by a day: never more than 15 per hour.
  const auto t = synthetic_trace({15, 15, 15, 15});
  EXPECT_FALSE(detector.evaluate(t, 86400.0).detected);
  // The same batches five minutes apart: 30 requests within an hour.
  const auto r = detector.evaluate(t, 300.0);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.benefit_before, 0.0);  // first batch resolved before detection
}

TEST(RateLimit, SequentialSlowAttackerNeverDetected) {
  const RateLimitDetector detector(20, 3600.0);
  const auto t = synthetic_trace(std::vector<std::size_t>(50, 1));
  EXPECT_FALSE(detector.evaluate(t, 300.0).detected);
}

TEST(RateLimit, Validation) {
  EXPECT_THROW(RateLimitDetector(5, 0.0), std::invalid_argument);
}

TEST(Pattern, FlagsUniformBatchSizes) {
  const PatternDetector detector(4, 5);
  const auto uniform = synthetic_trace({15, 15, 15, 15, 15});
  const auto r = detector.evaluate(uniform, 60.0);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.requests_sent, 60u);  // detected at the 4th batch
  const auto varied = synthetic_trace({15, 12, 15, 9, 15});
  EXPECT_FALSE(detector.evaluate(varied, 60.0).detected);
}

TEST(Pattern, IgnoresSmallBatches) {
  const PatternDetector detector(3, 5);
  const auto small = synthetic_trace({2, 2, 2, 2, 2, 2});
  EXPECT_FALSE(detector.evaluate(small, 60.0).detected);
}

TEST(Pattern, VaryingKEvadesWhereFixedKCaught) {
  // End-to-end: fixed-k PM-AReST trips the pattern detector, varying-k does
  // not — the evasion rationale of Thm. 5.
  sim::ProblemOptions opts;
  opts.num_targets = 30;
  opts.base_acceptance = 0.4;
  opts.seed = 3;
  const sim::Problem p = sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(300, 5, 3),
                               graph::EdgeProbModel::uniform(0.3, 0.9), 4),
      opts);
  const sim::World w(p, 5);
  const PatternDetector detector(3, 5);

  core::PmArest fixed(core::PmArestOptions{.batch_size = 10});
  const auto fixed_trace = core::run_attack(p, w, fixed, 60.0);
  EXPECT_TRUE(detector.evaluate(fixed_trace, 60.0).detected);

  core::PmArest varying(core::PmArestOptions{
      .batch_size = 10, .vary_k_min = 5, .vary_k_max = 15, .seed = 17});
  const auto vary_trace = core::run_attack(p, w, varying, 60.0);
  EXPECT_FALSE(detector.evaluate(vary_trace, 60.0).detected);
}

TEST(Honeypot, DetectsOnMonitoredRequest) {
  const auto t = synthetic_trace({3, 3});  // requests nodes 0..5
  const HoneypotMonitor monitor({4}, 100);
  const auto r = monitor.evaluate(t, 10.0);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.requests_sent, 6u);       // caught in batch 2
  EXPECT_DOUBLE_EQ(r.benefit_before, 3.0);
  const HoneypotMonitor safe(std::vector<NodeId>{90, 91}, 100);
  EXPECT_FALSE(safe.evaluate(t, 10.0).detected);
}

TEST(Honeypot, Validation) {
  EXPECT_THROW(HoneypotMonitor({150}, 100), std::invalid_argument);
  const HoneypotMonitor m({1, 1, 2}, 10);
  EXPECT_EQ(m.num_monitored(), 2u);  // duplicates collapse
}

TEST(Honeypot, SimulationPlacementBeatsRandomPlacement) {
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.target_mode = sim::TargetMode::kBfsBall;
  opts.base_acceptance = 0.4;
  opts.seed = 9;
  const sim::Problem p = sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(400, 4, 9),
                               graph::EdgeProbModel::uniform(0.3, 0.9), 10),
      opts);

  const auto informed = choose_monitors_by_simulation(p, 10, 6, 40.0, 5, 21);
  ASSERT_EQ(informed.size(), 10u);
  util::Rng rng(33);
  const auto random_nodes =
      util::sample_without_replacement(p.graph.num_nodes(), 10, rng);
  const HoneypotMonitor informed_monitor(informed, p.graph.num_nodes());
  const HoneypotMonitor random_monitor(
      std::vector<NodeId>(random_nodes.begin(), random_nodes.end()),
      p.graph.num_nodes());

  // Fresh attacks (different seed than placement sims).
  const auto mc = core::run_monte_carlo(
      p,
      [](int) {
        return std::make_unique<core::PmArest>(core::PmArestOptions{.batch_size = 5});
      },
      12, 40.0, 55);
  const auto si = summarize_detection(informed_monitor, mc.traces, 60.0);
  const auto sr = summarize_detection(random_monitor, mc.traces, 60.0);
  // Informed placement detects at least as often and strictly earlier (the
  // attacker walks straight into the honeypots the simulation predicted).
  EXPECT_GE(si.detect_fraction, sr.detect_fraction);
  EXPECT_GT(si.detect_fraction, 0.5);
  EXPECT_LT(si.mean_requests_before, sr.mean_requests_before);
}

}  // namespace
}  // namespace recon::defense
