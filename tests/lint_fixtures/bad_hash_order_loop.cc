// Iterating an unordered container into an ordered output leaks the hash
// seed / insertion history into results. Both loop shapes must be caught.
// lint-expect: hash-order
// lint-expect: hash-order
#include <unordered_map>
#include <vector>

std::vector<int> drain(const std::unordered_map<int, int>& src_copy) {
  std::unordered_map<int, int> counts = src_copy;
  std::vector<int> out;
  for (const auto& [key, value] : counts) out.push_back(key + value);
  for (auto it = counts.begin(); it != counts.end(); ++it) out.push_back(it->first);
  return out;
}
