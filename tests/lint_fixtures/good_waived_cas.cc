// The atomic-guarded pattern the repo sanctions: a CAS carrying a waiver
// that documents the ownership protocol and memory-order argument at the
// call site (the Chase-Lev deque's steal path is the real instance).
#include <atomic>

bool claim_ticket(std::atomic<int>& next, int mine) {
  // lint:lockfree-ok(single-writer ticket handoff: each claimant CASes only
  // its own precomputed ticket value, so a losing exchange means another
  // claimant already advanced past it and the claim is simply abandoned;
  // acq_rel pairs with the release publish of the ticket state)
  return next.compare_exchange_strong(mine, mine + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
}
