// Overriding both save_state and restore_state satisfies the checkpoint
// symmetry rule.
#include <string>

class FullyCheckpointed {
 public:
  std::string save_state() const { return counter_repr_; }
  void restore_state(const std::string& blob) { counter_repr_ = blob; }

 private:
  std::string counter_repr_;
};
