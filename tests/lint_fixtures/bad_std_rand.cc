// Deliberately introduces std::rand(): unseeded process-global randomness
// would make attack runs irreproducible and checkpoint-resume lossy.
// lint-expect: randomness
#include <cstdlib>

int draw_noise() { return std::rand() % 100; }
