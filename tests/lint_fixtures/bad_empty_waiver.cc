// A waiver without a written reason is not a waiver: the pragma grammar
// requires lint:<rule>-ok(<why>). The underlying finding must also still
// fire, since the malformed waiver grants no coverage.
// lint-expect: waiver
// lint-expect: hash-order
#include <unordered_set>
#include <vector>

std::vector<int> drain(const std::unordered_set<int>& src_copy) {
  std::unordered_set<int> seen = src_copy;
  std::vector<int> out;
  // lint:hash-order-ok()
  for (int v : seen) out.push_back(v);
  return out;
}
