// The annotated pattern: util::Mutex plus RECON_GUARDED_BY on every member
// the mutex protects. Clang's -Wthread-safety then rejects unlocked access;
// the linter only checks that the annotation exists at all. (Fixtures are
// linted, not compiled, so the macros are stand-ins here.)
#include <cstddef>
#define RECON_GUARDED_BY(x)
namespace util { class Mutex {}; }

class GuardedCounter {
 public:
  void bump();

 private:
  util::Mutex mutex_;
  std::size_t count_ RECON_GUARDED_BY(mutex_) = 0;
};
