// A strategy that saves state but cannot restore it resumes from a
// checkpoint with silently reset internals — the runs diverge.
// lint-expect: checkpoint-pair
#include <string>

class HalfCheckpointed {
 public:
  std::string save_state() const { return counter_repr_; }

 private:
  std::string counter_repr_;
};
