// A checkpoint record that can serialize itself but not parse the token back
// writes state no reader will ever restore — resume silently drops it.
// lint-expect: checkpoint-pair
#include <iosfwd>

struct WriteOnlyRecord {
  unsigned node = 0;
  double completion_time = 0.0;

  void serialize(std::ostream& out) const;
};
