// Publishing a checkpoint with a bare rename: nothing forces the file
// contents or the new directory entry to disk, so a crash right after the
// rename can leave the destination torn or pointing at lost data.
// lint-expect: durable-write
#include <cstdio>
#include <string>

void publish(const std::string& tmp, const std::string& path) {
  std::rename(tmp.c_str(), path.c_str());
}
