// Fixture: writer and reader of a binary format defined side by side in one
// translation unit, plus call sites and declarations that must NOT count as
// definitions.
#include <string>

struct TraceBinaryInfo {
  unsigned records = 0;
};

// A declaration (ends in ';') is not a definition and is never flagged.
TraceBinaryInfo write_trace_binary_file(const std::string& path, int records);

TraceBinaryInfo write_trace_binary_file(const std::string& path, int records) {
  TraceBinaryInfo info;
  info.records = static_cast<unsigned>(records);
  (void)path;
  return info;
}

int map_trace_binary_file(const std::string& path) {
  (void)path;
  return 0;
}

int reuse_both(const std::string& path) {
  // Call sites don't count as definitions either.
  write_trace_binary_file(path, 3);
  return map_trace_binary_file(path);
}
