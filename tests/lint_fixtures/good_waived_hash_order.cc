// A correctly waived hash-order loop: the waiver names the rule and gives
// a reason, which may continue across comment lines up to the close paren.
#include <cstddef>
#include <unordered_map>

std::size_t total(const std::unordered_map<int, std::size_t>& src_copy) {
  std::unordered_map<int, std::size_t> counts = src_copy;
  std::size_t sum = 0;
  // lint:hash-order-ok(integer sum is commutative and associative, so the
  // iteration order cannot change the result)
  for (const auto& [key, count] : counts) sum += count;
  return sum;
}
