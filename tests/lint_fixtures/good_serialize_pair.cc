// A checkpoint record with both directions of its token codec lints clean:
// whatever serialize writes, deserialize can read back on resume.
#include <iosfwd>
#include <string>

struct RoundTripRecord {
  unsigned node = 0;
  double completion_time = 0.0;

  void serialize(std::ostream& out) const;
  static RoundTripRecord deserialize(const std::string& token);
};
