// The approved pattern for order-sensitive consumption of an unordered
// container: extract keys, sort, then iterate the sorted vector (see
// watts_strogatz in src/graph/generators.cc). Iterator-pair construction
// into a vector is not an iteration loop and must not be flagged.
#include <algorithm>
#include <unordered_set>
#include <vector>

std::vector<int> drain_sorted(const std::unordered_set<int>& src_copy) {
  std::unordered_set<int> seen = src_copy;
  std::vector<int> keys(seen.begin(), seen.end());
  std::sort(keys.begin(), keys.end());
  std::vector<int> out;
  for (int v : keys) out.push_back(v);
  return out;
}
