// Seeded, stream-derived randomness is the sanctioned pattern. Mentions of
// std::rand or steady_clock::now in comments or string literals must not
// trip the lexical scan: "std::rand() is banned" stays a string.
#include <cstdint>
#include <string>

struct Rng {
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
};

std::string describe() {
  Rng rng(0x5EED);
  (void)rng;
  return "std::rand() and time(nullptr) are banned here";
}
