// time(nullptr) as a seed source is the classic nondeterminism bug: two
// runs with identical flags produce different traces.
// lint-expect: clock
#include <ctime>

long long wall_seed() { return static_cast<long long>(time(nullptr)); }
