// Raw steady_clock reads outside util::WallTimer hide timing dependence
// from review; deadline code must be visibly deadline code.
// lint-expect: clock
#include <chrono>

long long nanos_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
