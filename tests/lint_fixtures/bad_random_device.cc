// std::random_device is entropy the checkpoint cannot capture; all
// randomness must come from util::Rng streams derived from the run seed.
// lint-expect: randomness
#include <random>

unsigned draw_seed() {
  std::random_device rd;
  return rd();
}
