// Fixture: a sanctioned measurement site. The per-shard stopwatch feeds a
// calibration EWMA whose reading steers only work layout, never a selected
// result, so the construction line carries a hotpath waiver and the pass
// accepts it.

#include <cstddef>
#include <vector>

void score_all(util::ThreadPool& pool, std::vector<double>& out,
               std::vector<double>& shard_nanos) {
  auto score_chunk = [&](std::size_t b, std::size_t e) {
    // lint:hotpath-ok(calibration stopwatch: two clock reads amortized over
    // the whole chunk; the measurement tunes future layout only)
    const util::WallTimer chunk_timer;
    for (std::size_t i = b; i < e; ++i) {
      out[i] = static_cast<double>(i);
    }
    shard_nanos[b] = static_cast<double>(chunk_timer.nanos());
  };
  pool.parallel_for(0, out.size(), score_chunk, /*grain=*/64);
}
