// Fixture: one banned line inside a function reachable from a parallel body
// carries a line-level waiver (exception-only path) — the traversal still
// runs, but that site is accepted.

#include <cstddef>
#include <stdexcept>
#include <vector>

double checked_score(std::size_t i, std::size_t limit) {
  if (i >= limit) {
    // lint:hotpath-ok(throw path only: the log fires at most once per run,
    // immediately before the pool propagates the exception and stops)
    RECON_LOG(kError, "score index out of range");
    throw std::out_of_range("score index");
  }
  return static_cast<double>(i);
}

void score_all(util::ThreadPool& pool, std::vector<double>& out) {
  pool.parallel_for(0, out.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = checked_score(i, out.size());
    }
  }, /*grain=*/64);
}
