// Fixture: the class declares both checkpoint sides, but neither references
// width_ — a resume would silently reset it. One ckpt-coverage finding at
// the declaration.
// analyze-expect: ckpt-coverage

#include <string>

class WindowState {
 public:
  std::string save_state() const { return std::to_string(cursor_); }
  void restore_state(const std::string& blob) { cursor_ = std::stol(blob); }

 private:
  long cursor_ = 0;
  long width_ = 8;
};
