// Fixture: the parallel body logs directly, and the scoring helper it calls
// opens a file stream and reads a raw clock — three hotpath findings: one at
// the body's RECON_LOG, two inside score_one reached through the call graph.
// analyze-expect: hotpath
// analyze-expect: hotpath
// analyze-expect: hotpath

#include <chrono>
#include <cstddef>
#include <fstream>
#include <vector>

double score_one(std::size_t i) {
  std::ofstream trace("trace.txt", std::ios::app);
  const auto t = std::chrono::steady_clock::now();
  trace << i << ' ' << t.time_since_epoch().count() << '\n';
  return static_cast<double>(i);
}

void score_all(util::ThreadPool& pool, std::vector<double>& out) {
  pool.parallel_for(0, out.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      RECON_LOG(kInfo, "scoring node");
      out[i] = score_one(i);
    }
  }, /*grain=*/64);
}
