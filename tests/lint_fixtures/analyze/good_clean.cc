// Fixture: a file every analyzer pass accepts as-is. The checkpoint pair
// references every member on both sides, the parallel body is pure
// arithmetic, locks are always taken in one order, and there is no
// crash-point machinery to cross-check.

#include <cstddef>
#include <string>
#include <vector>

class WindowState {
 public:
  // Regression: a defaulted operator must not be mis-read as a member field
  // named 'operator' (the '=' in 'operator==' is not an initializer).
  bool operator==(const WindowState&) const = default;

  std::string save_state() const {
    return std::to_string(cursor_) + ":" + std::to_string(width_);
  }
  void restore_state(const std::string& blob) {
    const auto colon = blob.find(':');
    cursor_ = std::stol(blob.substr(0, colon));
    width_ = std::stol(blob.substr(colon + 1));
  }

 private:
  long cursor_ = 0;
  long width_ = 8;
};

struct Shared {
  util::Mutex head_mu_;
  util::Mutex tail_mu_;
};

// Both functions take head before tail: the lock graph stays acyclic.
void push_front(Shared& s) {
  util::MutexLock head(s.head_mu_);
  util::MutexLock tail(s.tail_mu_);
}

void push_back(Shared& s) {
  util::MutexLock head(s.head_mu_);
  util::MutexLock tail(s.tail_mu_);
}

void scale_all(util::ThreadPool& pool, std::vector<double>& out) {
  pool.parallel_for(0, out.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = static_cast<double>(i) * 0.5;
    }
  }, /*grain=*/64);
}
