// Fixture: width_ is absent from both checkpoint sides but carries a waiver
// naming why it is derived — the ckpt-coverage pass accepts the file.

#include <string>

class WindowState {
 public:
  std::string save_state() const { return std::to_string(cursor_); }
  void restore_state(const std::string& blob) {
    cursor_ = std::stol(blob);
    width_ = derive_width(cursor_);
  }

 private:
  static long derive_width(long cursor);
  long cursor_ = 0;
  // lint:ckpt-coverage-ok(pure function of cursor_, recomputed by
  // restore_state via derive_width rather than stored)
  long width_ = 8;
};
