// Fixture: timing instrumentation in a hot scoring body. The parallel_for
// receives a *named* lambda defined well above the call site; the WallTimer
// construction inside it must be flagged at the construction line (the
// named-lambda body offset), not at a call-site-relative line — a waiver
// placed on the reported line has to land on the actual statement.
// analyze-expect: hotpath

#include <cstddef>
#include <vector>

void score_all(util::ThreadPool& pool, std::vector<double>& out) {
  auto score_chunk = [&](std::size_t b, std::size_t e) {
    const util::WallTimer chunk_timer;
    for (std::size_t i = b; i < e; ++i) {
      out[i] = static_cast<double>(i);
    }
    out[b] += chunk_timer.seconds();
  };
  pool.parallel_for(0, out.size(), score_chunk, /*grain=*/64);
}
