// Fixture: the same AB/BA shape as bad_lock_cycle.cc, but the out-of-order
// acquisition carries a waiver stating the protocol that makes it safe — the
// waived site contributes no edges, so no cycle remains.

struct Pair {
  util::Mutex a_mu_;
  util::Mutex b_mu_;
};

void forward(Pair& p) {
  util::MutexLock la(p.a_mu_);
  util::MutexLock lb(p.b_mu_);
}

void backward(Pair& p) {
  util::MutexLock lb(p.b_mu_);
  // lint:lockgraph-ok(backward only runs at shutdown after every forward
  // caller has joined, so the two orders can never interleave)
  util::MutexLock la(p.a_mu_);
}
