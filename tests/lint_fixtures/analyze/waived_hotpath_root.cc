// Fixture: the body does blocking work, but the parallel call site is waived
// as a coarse fan-out — the whole traversal from that root is skipped.

#include <cstddef>
#include <fstream>
#include <vector>

void snapshot_shard(std::size_t i);

void snapshot_all(util::ThreadPool& pool, std::size_t shards) {
  // lint:hotpath-ok(coarse fan-out: each iteration snapshots one whole shard
  // to disk; this is a batch maintenance job, not a scoring kernel)
  pool.parallel_for(0, shards, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      std::ofstream out("shard-" + std::to_string(i));
      snapshot_shard(i);
    }
  }, /*grain=*/1);
}
