// Fixture (cross-TU lock cycle, 1/3): two classes, one mutex each. The
// cycle only exists through call edges that span queue.cc and journal.cc —
// no single file shows both orders.
// analyze-expect: lockgraph

#pragma once

class Journal;

class Queue {
 public:
  void enqueue(Journal& j);
  void drain();

 private:
  util::Mutex q_mu_;
};

class Journal {
 public:
  void record();
  void rotate(Queue& q);

 private:
  util::Mutex j_mu_;
};
