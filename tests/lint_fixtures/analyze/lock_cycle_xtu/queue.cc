// Fixture (cross-TU lock cycle, 2/3): enqueue() holds q_mu_ across a call into
// Journal::record(), which acquires j_mu_ — the Queue::q_mu_ -> Journal::j_mu_
// half of the cycle.

#include "types.h"

void Queue::enqueue(Journal& j) {
  util::MutexLock lock(q_mu_);
  j.record();
}

void Queue::drain() {
  util::MutexLock lock(q_mu_);
}
