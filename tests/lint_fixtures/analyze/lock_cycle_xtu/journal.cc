// Fixture (cross-TU lock cycle, 3/3): rotate() holds j_mu_ across a call
// into Queue::drain(), which acquires q_mu_ — the opposite order to
// queue.cc's enqueue(), closing the cycle.

#include "types.h"

void Journal::record() {
  util::MutexLock lock(j_mu_);
}

void Journal::rotate(Queue& q) {
  util::MutexLock lock(j_mu_);
  q.drain();
}
