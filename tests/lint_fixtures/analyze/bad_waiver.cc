// Fixture: malformed analyzer waivers — a rule name no tool owns and an
// empty reason. Both surface as waiver findings; neither suppresses
// anything.
// analyze-expect: waiver
// analyze-expect: waiver

struct Pair {
  util::Mutex a_mu_;
  util::Mutex b_mu_;
};

void ordered(Pair& p) {
  // lint:lockchart-ok(rule name typo: no tool owns 'lockchart')
  util::MutexLock la(p.a_mu_);
  // lint:lockgraph-ok()
  util::MutexLock lb(p.b_mu_);
}
