// Fixture: two functions acquire the same pair of mutexes in opposite
// orders — the classic AB/BA deadlock. The lockgraph pass must report one
// cycle with a witness naming both sites.
// analyze-expect: lockgraph

struct Pair {
  util::Mutex a_mu_;
  util::Mutex b_mu_;
};

void forward(Pair& p) {
  util::MutexLock la(p.a_mu_);
  util::MutexLock lb(p.b_mu_);
}

void backward(Pair& p) {
  util::MutexLock lb(p.b_mu_);
  util::MutexLock la(p.a_mu_);
}
