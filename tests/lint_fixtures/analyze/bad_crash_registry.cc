// Fixture: every way the crash-site registry can disagree with the arming
// sites — a duplicate table entry, an armed site missing from the table, and
// a table entry with no arming site left in the tree.
// analyze-expect: crash-registry
// analyze-expect: crash-registry
// analyze-expect: crash-registry

namespace {

constexpr const char* kSites[] = {
    "fixture.alpha",
    "fixture.alpha",
};

}  // namespace

void arm_beta() {
  RECON_CRASH_POINT("fixture.beta");
}
