// Fixture (cross-TU checkpoint coverage, 2/2): out-of-line bodies. The
// restore side touches epoch_ only through set_epoch — a reference the
// analyzer must find by resolving the same-class helper's body.

#include "replay_counter.h"

std::string ReplayCounter::save_state() const {
  return std::to_string(epoch_) + ":" + std::to_string(steps_);
}

void ReplayCounter::restore_state(const std::string& blob) {
  const auto colon = blob.find(':');
  set_epoch(std::stol(blob.substr(0, colon)));
  steps_ = std::stol(blob.substr(colon + 1));
}

void ReplayCounter::set_epoch(long e) {
  epoch_ = e;
}
