// Fixture (cross-TU checkpoint coverage, 1/2): the checkpoint pair is only
// declared here; the bodies live in replay_counter.cc. epoch_ is referenced
// through the set_epoch helper (the closure must count it), steps_ directly,
// and scratch_ by neither side — exactly one finding.
// analyze-expect: ckpt-coverage

#pragma once

#include <string>

class ReplayCounter {
 public:
  std::string save_state() const;
  void restore_state(const std::string& blob);

 private:
  void set_epoch(long e);

  long epoch_ = 0;
  long steps_ = 0;
  long scratch_ = 0;
};
