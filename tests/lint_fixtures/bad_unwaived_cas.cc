// A bare CAS loop is a lock-free algorithm with no stated protocol: nothing
// says who owns which end, what a losing exchange means, or why the memory
// orders are sufficient — exactly the code that passes every test until the
// one interleaving that corrupts a task pointer.
// lint-expect: lockfree
#include <atomic>

int pop_count(std::atomic<int>& counter) {
  int seen = counter.load(std::memory_order_relaxed);
  while (!counter.compare_exchange_weak(seen, seen - 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
  }
  return seen;
}
