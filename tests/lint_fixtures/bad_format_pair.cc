// Fixture: defines the writer side of a binary format without the reader in
// the same translation unit — a layout change here could silently desync the
// two sides.
// lint-expect: format-pair
#include <string>

struct TraceBinaryInfo {
  unsigned records = 0;
};

TraceBinaryInfo write_trace_binary_file(const std::string& path, int records) {
  TraceBinaryInfo info;
  info.records = static_cast<unsigned>(records);
  (void)path;
  return info;
}
