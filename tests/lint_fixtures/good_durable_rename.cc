// The sanctioned publish path: util::durable_rename fsyncs the file, renames,
// then fsyncs the parent directory, so the publish survives a crash at any
// point. Calling it is not a raw rename and lints clean.
#include <string>

namespace util {
void durable_rename(const std::string& from, const std::string& to);
}

void publish(const std::string& tmp, const std::string& path) {
  util::durable_rename(tmp, path);
}
