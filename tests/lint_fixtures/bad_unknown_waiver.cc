// Waivers must name a real rule; typos would otherwise silently waive
// nothing while looking authoritative in review.
// lint-expect: waiver
// lint:hashorder-ok(misspelled rule name)
int id(int x) { return x; }
