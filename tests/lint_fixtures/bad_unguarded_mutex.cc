// A mutex member with no RECON_GUARDED_BY annotation gives clang's
// -Wthread-safety nothing to enforce: the lock discipline exists only in
// the author's head. This is also what "removing a GUARDED_BY" degrades to.
// lint-expect: guard
#include <cstddef>
#include <mutex>

class SharedCounter {
 public:
  void bump();

 private:
  std::mutex mutex_;
  std::size_t count_ = 0;
};
