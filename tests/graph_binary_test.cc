// Tests for the `#recon-graph v1` binary substrate: write/map round-trips,
// degree-sorted relabeling, corruption handling on the mmap loader, the
// streaming generators, and the relabeling-determinism guarantee of
// batch_select (remapped graphs select the same nodes, modulo relabeling,
// at every thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_select.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace recon::graph {
namespace {

std::string temp_path(const std::string& name) {
  return "/tmp/recon_graph_binary_test_" + name;
}

/// A small graph with a distinctive degree profile and dyadic-exact edge
/// probabilities (alternating 1.0 / 0.5 keeps every score computation exact
/// in binary floating point, so selection comparisons are order-independent).
Graph dyadic_graph(NodeId n, EdgeId m, std::uint64_t seed) {
  const Graph base = erdos_renyi_gnm(n, m, seed);
  GraphBuilder b(n);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    b.add_edge(base.edge_u(e), base.edge_v(e), e % 2 == 0 ? 1.0 : 0.5);
  }
  return b.build();
}

Graph dyadic_ba_graph(NodeId n, NodeId m_per_node, std::uint64_t seed) {
  const Graph base = barabasi_albert(n, m_per_node, seed);
  GraphBuilder b(n);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    b.add_edge(base.edge_u(e), base.edge_v(e), e % 2 == 0 ? 1.0 : 0.5);
  }
  return b.build();
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Structural equality through the public accessors.
void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u)) << "node " << u;
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin())) << "node " << u;
    const auto ea = a.incident_edges(u);
    const auto eb = b.incident_edges(u);
    ASSERT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin())) << "node " << u;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge_u(e), b.edge_u(e));
    ASSERT_EQ(a.edge_v(e), b.edge_v(e));
    ASSERT_EQ(a.edge_prob(e), b.edge_prob(e));
  }
}

TEST(GraphBinary, RoundTripKeepLayout) {
  const Graph g = dyadic_graph(60, 150, 11);
  const std::string path = temp_path("roundtrip.bin");
  GraphBinaryWriteOptions wo;
  wo.layout = GraphLayout::kKeep;
  const GraphBinaryInfo info = write_graph_binary_file(path, g, wo);
  EXPECT_EQ(info.num_nodes, 60u);
  EXPECT_EQ(info.num_edges, g.num_edges());
  EXPECT_FALSE(info.relabeled);

  const Graph m = map_graph_binary_file(path);
  EXPECT_TRUE(m.is_mapped());
  EXPECT_FALSE(m.is_relabeled());
  expect_same_graph(g, m);
  std::remove(path.c_str());
}

TEST(GraphBinary, RoundTripWithAttributes) {
  GraphBuilder b(5);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 1.0);
  b.add_edge(3, 4, 0.25);
  std::vector<std::uint16_t> attrs;
  for (std::uint16_t i = 0; i < 10; ++i) attrs.push_back(i);
  b.set_attributes(attrs, 2);
  const Graph g = b.build();

  const std::string path = temp_path("attrs.bin");
  GraphBinaryWriteOptions wo;
  wo.layout = GraphLayout::kKeep;
  const auto info = write_graph_binary_file(path, g, wo);
  EXPECT_EQ(info.attribute_dim, 2u);

  const Graph m = map_graph_binary_file(path);
  ASSERT_EQ(m.attribute_dim(), 2u);
  for (NodeId u = 0; u < 5; ++u) {
    const auto ga = g.node_attributes(u);
    const auto ma = m.node_attributes(u);
    ASSERT_TRUE(std::equal(ga.begin(), ga.end(), ma.begin()));
  }
  std::remove(path.c_str());
}

TEST(GraphBinary, DegreeSortedLayoutRelabelsAndMapsBack) {
  const Graph g = dyadic_ba_graph(80, 3, 7);
  const std::string path = temp_path("sorted.bin");
  const auto info = write_graph_binary_file(path, g);  // default: degree-sorted
  const Graph m = map_graph_binary_file(path);
  ASSERT_EQ(info.relabeled, m.is_relabeled());

  // Degrees must be nonincreasing in the new labeling when relabeled.
  if (m.is_relabeled()) {
    for (NodeId u = 1; u < m.num_nodes(); ++u) {
      EXPECT_GE(m.degree(u - 1), m.degree(u));
    }
  }
  // orig_id is a bijection and maps every structural fact back to g.
  std::vector<std::uint8_t> seen(g.num_nodes(), 0);
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    const NodeId o = m.orig_id(u);
    ASSERT_LT(o, g.num_nodes());
    ASSERT_FALSE(seen[o]);
    seen[o] = 1;
    ASSERT_EQ(m.degree(u), g.degree(o));
    std::vector<NodeId> mapped;
    for (NodeId v : m.neighbors(u)) mapped.push_back(m.orig_id(v));
    std::sort(mapped.begin(), mapped.end());
    const auto orig = g.neighbors(o);
    ASSERT_TRUE(std::equal(orig.begin(), orig.end(), mapped.begin()));
  }
  // Edge probabilities follow their edges through the relabeling.
  for (EdgeId e = 0; e < m.num_edges(); ++e) {
    const NodeId ou = m.orig_id(m.edge_u(e));
    const NodeId ov = m.orig_id(m.edge_v(e));
    const EdgeId oe = g.find_edge(ou, ov);
    ASSERT_NE(oe, kInvalidEdge);
    EXPECT_EQ(m.edge_prob(e), g.edge_prob(oe));
  }
  std::remove(path.c_str());
}

TEST(GraphBinary, AlreadySortedGraphDegradesToKeep) {
  const Graph g = dyadic_ba_graph(50, 2, 3);
  const std::string p1 = temp_path("sorted_once.bin");
  const std::string p2 = temp_path("sorted_twice.bin");
  write_graph_binary_file(p1, g);
  const Graph sorted = map_graph_binary_file(p1);
  // Re-sorting an already degree-sorted graph is the identity permutation,
  // which the writer degrades to kKeep (no map sections, not relabeled...
  // relative to its own labeling; the original orig-id map is preserved).
  write_graph_binary_file(p2, sorted);
  const auto info = probe_graph_binary_file(p2);
  const Graph again = map_graph_binary_file(p2);
  expect_same_graph(sorted, again);
  EXPECT_EQ(info.num_nodes, g.num_nodes());
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(GraphBinary, ProbeMatchesMapAndSniffsFormat) {
  const Graph g = dyadic_graph(40, 80, 5);
  const std::string bin = temp_path("probe.bin");
  const std::string txt = temp_path("probe.txt");
  const auto info = write_graph_binary_file(bin, g);
  write_edge_list_file(txt, g);

  EXPECT_TRUE(is_graph_binary_file(bin));
  EXPECT_FALSE(is_graph_binary_file(txt));
  EXPECT_FALSE(is_graph_binary_file(temp_path("nonexistent.bin")));

  const auto probed = probe_graph_binary_file(bin);
  EXPECT_EQ(probed.num_nodes, info.num_nodes);
  EXPECT_EQ(probed.num_edges, info.num_edges);
  EXPECT_EQ(probed.relabeled, info.relabeled);
  EXPECT_EQ(probed.file_bytes, info.file_bytes);
  std::remove(bin.c_str());
  std::remove(txt.c_str());
}

TEST(GraphBinary, TruncatedFilesThrowNotCrash) {
  const Graph g = dyadic_graph(30, 60, 9);
  const std::string path = temp_path("trunc.bin");
  write_graph_binary_file(path, g);
  const std::vector<char> whole = read_bytes(path);
  ASSERT_GT(whole.size(), 100u);

  // Every prefix length in a sweep (including header-splitting cuts) must
  // produce an exception, never a crash or a silently wrong graph.
  for (std::size_t keep : {std::size_t{0}, std::size_t{7}, std::size_t{23},
                           std::size_t{24}, std::size_t{60}, std::size_t{88},
                           whole.size() / 2, whole.size() - 1}) {
    write_bytes(path, {whole.begin(), whole.begin() + static_cast<std::ptrdiff_t>(keep)});
    EXPECT_THROW(map_graph_binary_file(path), std::exception) << "keep=" << keep;
  }
  std::remove(path.c_str());
}

TEST(GraphBinary, GarbageHeaderThrows) {
  const Graph g = dyadic_graph(20, 30, 13);
  const std::string path = temp_path("garbage.bin");
  write_graph_binary_file(path, g);
  const std::vector<char> whole = read_bytes(path);

  // Corrupt magic.
  std::vector<char> bad = whole;
  bad[0] = 'X';
  write_bytes(path, bad);
  EXPECT_THROW(map_graph_binary_file(path), std::exception);

  // Flip the endianness tag (simulates a foreign-endian writer).
  bad = whole;
  std::reverse(bad.begin() + 24, bad.begin() + 32);
  write_bytes(path, bad);
  EXPECT_THROW(map_graph_binary_file(path), std::exception);

  // A text file with the wrong magic is rejected up front.
  write_bytes(path, {'h', 'e', 'l', 'l', 'o', '\n'});
  EXPECT_THROW(map_graph_binary_file(path), std::exception);
  std::remove(path.c_str());
}

TEST(GraphBinary, PayloadCorruptionFailsChecksum) {
  const Graph g = dyadic_graph(30, 60, 17);
  const std::string path = temp_path("corrupt.bin");
  write_graph_binary_file(path, g);
  std::vector<char> bytes = read_bytes(path);
  // Flip one bit near the end of the payload (edge probabilities / maps).
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x40);
  write_bytes(path, bytes);
  EXPECT_THROW(map_graph_binary_file(path), std::exception);
  std::remove(path.c_str());
}

TEST(GraphBinary, RandomMutationsNeverCrash) {
  const Graph g = dyadic_graph(25, 50, 19);
  const std::string path = temp_path("fuzz.bin");
  write_graph_binary_file(path, g);
  const std::vector<char> whole = read_bytes(path);

  util::Rng rng(0xF022);
  int rejected = 0;
  int accepted = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<char> mutated = whole;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = static_cast<char>(rng.below(256));
    if (rng.below(4) == 0) {
      mutated.resize(1 + rng.below(mutated.size()));  // truncate too
    }
    write_bytes(path, mutated);
    try {
      const Graph m = map_graph_binary_file(path);
      // A no-op mutation (same byte value) can legitimately succeed; the
      // result must then still be a well-formed graph.
      ASSERT_EQ(m.num_nodes(), g.num_nodes());
      ++accepted;
    } catch (const std::exception&) {
      ++rejected;  // rejection is the expected outcome
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_LT(accepted, 200);
  std::remove(path.c_str());
}

TEST(GraphBinary, StreamingGeneratorsProduceValidDeterministicFiles) {
  const std::string p1 = temp_path("stream_er1.bin");
  const std::string p2 = temp_path("stream_er2.bin");
  const auto info =
      stream_erdos_renyi_binary(p1, 500, 1500, EdgeProbModel::uniform(0.2, 0.9), 42);
  EXPECT_EQ(info.num_nodes, 500u);
  EXPECT_EQ(info.num_edges, 1500u);
  const Graph g = map_graph_binary_file(p1);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_EQ(g.num_edges(), 1500u);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NE(g.edge_u(e), g.edge_v(e));
    EXPECT_GE(g.edge_prob(e), 0.2);
    EXPECT_LE(g.edge_prob(e), 0.9);
  }

  // Same seed -> byte-identical file.
  stream_erdos_renyi_binary(p2, 500, 1500, EdgeProbModel::uniform(0.2, 0.9), 42);
  EXPECT_EQ(read_bytes(p1), read_bytes(p2));

  const std::string pb = temp_path("stream_ba.bin");
  const auto ba = stream_barabasi_albert_binary(pb, 400, 4,
                                                EdgeProbModel::constant(1.0), 7);
  const Graph gb = map_graph_binary_file(pb);
  EXPECT_EQ(gb.num_nodes(), 400u);
  EXPECT_EQ(gb.num_edges(), ba.num_edges);
  // Structural probabilities cannot stream.
  EXPECT_THROW(stream_erdos_renyi_binary(p2, 10, 5,
                                         EdgeProbModel::structural(0.4, 0.5), 1),
               std::invalid_argument);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(pb.c_str());
}

// ---------------------------------------------------------------------------
// Relabeling determinism: a degree-sorted remap of the same instance selects
// the same nodes (modulo the relabeling) at every thread count, because all
// selection tie-breaks use orig ids. Edge probabilities and benefits are
// dyadic-exact so every score is computed exactly regardless of the
// neighbor-summation order.
// ---------------------------------------------------------------------------

sim::Problem problem_on(Graph g, const std::vector<NodeId>& targets) {
  sim::Problem p;
  p.targets = targets;
  std::sort(p.targets.begin(), p.targets.end());
  p.is_target.assign(g.num_nodes(), 0);
  for (NodeId t : p.targets) p.is_target[t] = 1;
  p.benefit = sim::make_uniform_benefit(g, 0.5, 0.5);
  p.acceptance = sim::make_constant_acceptance(0.5);
  p.acceptance.mutual_boost = 0.25;
  p.graph = std::move(g);
  p.validate();
  return p;
}

/// Accepts the same (original-label) nodes in both observations, revealing
/// the full neighborhood each time, so the two observations stay isomorphic
/// under the relabeling.
void accept_nodes(sim::Observation& obs, const std::vector<NodeId>& orig_nodes,
                  const std::vector<NodeId>& old_to_new) {
  for (NodeId o : orig_nodes) {
    const NodeId u = old_to_new.empty() ? o : old_to_new[o];
    obs.record_accept(u, obs.problem().graph.neighbors(u));
  }
}

void check_remap_determinism(const Graph& g, const std::string& tag) {
  const std::vector<NodeId> perm = degree_sort_permutation(g);
  const Graph rg = remap_graph(g, perm);
  ASSERT_TRUE(rg.is_relabeled());

  std::vector<NodeId> targets_orig;
  for (NodeId t = 0; t < g.num_nodes(); t += 7) targets_orig.push_back(t);
  std::vector<NodeId> targets_new;
  for (NodeId t : targets_orig) targets_new.push_back(perm[t]);

  const sim::Problem p_id = problem_on(g, targets_orig);
  const sim::Problem p_rm = problem_on(rg, targets_new);

  sim::Observation obs_id(p_id);
  sim::Observation obs_rm(p_rm);
  const std::vector<NodeId> accepted = {0, 5, 9};
  accept_nodes(obs_id, accepted, {});
  accept_nodes(obs_rm, accepted, perm);

  core::BatchSelectOptions options;
  options.batch_size = 8;

  // Reference: sequential selection on the identity labeling.
  const std::vector<NodeId> base = core::batch_select(obs_id, options);
  ASSERT_FALSE(base.empty());

  for (unsigned threads : {0u, 2u, 8u}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    options.pool = pool.get();

    const std::vector<NodeId> got_id = core::batch_select(obs_id, options);
    EXPECT_EQ(got_id, base) << tag << " threads=" << threads;

    const std::vector<NodeId> got_rm = core::batch_select(obs_rm, options);
    ASSERT_EQ(got_rm.size(), base.size()) << tag << " threads=" << threads;
    for (std::size_t i = 0; i < base.size(); ++i) {
      // Same node, same position, expressed in the remapped labeling.
      EXPECT_EQ(rg.orig_id(got_rm[i]), base[i])
          << tag << " threads=" << threads << " position " << i;
    }
  }
}

TEST(GraphBinaryDeterminism, DegreeRemapSelectsSameBatchOnBa) {
  check_remap_determinism(dyadic_ba_graph(300, 3, 21), "ba");
}

TEST(GraphBinaryDeterminism, DegreeRemapSelectsSameBatchOnEr) {
  check_remap_determinism(dyadic_graph(300, 900, 23), "er");
}

TEST(GraphBinaryDeterminism, MappedFileSelectsSameBatchAsInRam) {
  // End-to-end: the mmap-backed keep-layout graph drives selection exactly
  // like the in-RAM original.
  const Graph g = dyadic_ba_graph(200, 3, 29);
  const std::string path = temp_path("parity.bin");
  GraphBinaryWriteOptions wo;
  wo.layout = GraphLayout::kKeep;
  write_graph_binary_file(path, g, wo);
  const Graph m = map_graph_binary_file(path);

  std::vector<NodeId> targets;
  for (NodeId t = 0; t < g.num_nodes(); t += 5) targets.push_back(t);
  const sim::Problem p_ram = problem_on(g, targets);
  const sim::Problem p_map = problem_on(m, targets);
  sim::Observation obs_ram(p_ram);
  sim::Observation obs_map(p_map);
  accept_nodes(obs_ram, {1, 2, 3}, {});
  accept_nodes(obs_map, {1, 2, 3}, {});

  core::BatchSelectOptions options;
  options.batch_size = 10;
  EXPECT_EQ(core::batch_select(obs_ram, options), core::batch_select(obs_map, options));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace recon::graph
