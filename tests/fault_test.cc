// Fault-injection and retry/backoff tests: FaultModel semantics, the
// robustness-enabled runners, and the Theorem-4 retry regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>

#include "core/async_attack.h"
#include "core/attack.h"
#include "core/pm_arest.h"
#include "core/retry_policy.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/problem.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::FaultModel;
using sim::FaultOptions;
using sim::Problem;
using sim::RequestOutcome;

Problem ba_problem(int seed, NodeId n = 120) {
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.95), seed + 1),
      opts);
}

Problem er_problem(int seed, NodeId n = 120) {
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, 4 * n, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.95), seed + 1),
      opts);
}

void expect_traces_equal(const sim::AttackTrace& a, const sim::AttackTrace& b) {
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].requests, b.batches[i].requests) << "batch " << i;
    EXPECT_EQ(a.batches[i].accepted, b.batches[i].accepted) << "batch " << i;
    EXPECT_EQ(a.batches[i].outcome, b.batches[i].outcome) << "batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].cost, b.batches[i].cost) << "batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].cumulative_cost, b.batches[i].cumulative_cost);
    EXPECT_DOUBLE_EQ(a.batches[i].cumulative.total(), b.batches[i].cumulative.total());
  }
}

/// Per-node count of attempt-consuming sends (delivered / timeout / dropped —
/// everything except throttles and suspension bounces).
std::map<NodeId, int> attempts_from_trace(const sim::AttackTrace& trace) {
  std::map<NodeId, int> attempts;
  for (const auto& b : trace.batches) {
    for (std::size_t i = 0; i < b.requests.size(); ++i) {
      const auto o = b.outcome.empty()
                         ? RequestOutcome::kDelivered
                         : static_cast<RequestOutcome>(b.outcome[i]);
      if (o == RequestOutcome::kDelivered || o == RequestOutcome::kTimeout ||
          o == RequestOutcome::kDropped) {
        ++attempts[b.requests[i]];
      }
    }
  }
  return attempts;
}

int count_outcomes(const sim::AttackTrace& trace, RequestOutcome which) {
  int n = 0;
  for (const auto& b : trace.batches) {
    for (std::uint8_t o : b.outcome) {
      if (o == static_cast<std::uint8_t>(which)) ++n;
    }
  }
  return n;
}

TEST(FaultOptions, ValidatesRates) {
  FaultOptions bad;
  bad.timeout_rate = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.timeout_rate = 0.6;
  bad.drop_rate = 0.6;
  EXPECT_THROW(bad.validate(), std::invalid_argument);  // sums past 1
  FaultOptions ok;
  ok.timeout_rate = 0.3;
  ok.drop_rate = 0.3;
  ok.throttle_rate = 0.3;
  EXPECT_NO_THROW(ok.validate());
}

TEST(FaultModel, ResolveIsDeterministicAndRestorable) {
  FaultOptions fo;
  fo.timeout_rate = 0.2;
  fo.drop_rate = 0.2;
  fo.throttle_rate = 0.2;
  fo.seed = 99;
  FaultModel a(fo);
  std::vector<RequestOutcome> first;
  for (NodeId u = 0; u < 50; ++u) first.push_back(a.resolve(u % 7));
  const auto mid = a.state();
  std::vector<RequestOutcome> tail;
  for (NodeId u = 0; u < 50; ++u) tail.push_back(a.resolve(u % 7));

  FaultModel b(fo);
  b.restore(mid);
  for (NodeId u = 0; u < 50; ++u) EXPECT_EQ(b.resolve(u % 7), tail[u]);

  FaultModel c(fo);  // fresh model replays the whole stream
  for (NodeId u = 0; u < 50; ++u) EXPECT_EQ(c.resolve(u % 7), first[u]);
}

TEST(FaultModel, SuspensionTripsAndLocksOut) {
  FaultOptions fo;
  fo.suspension.max_requests = 3;
  fo.suspension.window_ticks = 2;
  fo.suspension.lockout_ticks = 4;
  FaultModel m(fo);
  EXPECT_EQ(m.resolve(0), RequestOutcome::kDelivered);
  EXPECT_EQ(m.resolve(1), RequestOutcome::kDelivered);
  EXPECT_EQ(m.resolve(2), RequestOutcome::kDelivered);
  EXPECT_EQ(m.resolve(3), RequestOutcome::kSuspended);  // 4th in window trips
  EXPECT_TRUE(m.suspended());
  EXPECT_EQ(m.counters().lockouts, 1u);
  EXPECT_EQ(m.resolve(4), RequestOutcome::kSuspended);  // bounces while locked
  m.advance_ticks(m.suspended_until() - m.tick());
  EXPECT_FALSE(m.suspended());
  EXPECT_EQ(m.resolve(5), RequestOutcome::kDelivered);
}

TEST(FaultRun, ZeroRatesAreBitIdenticalToPlainRunner) {
  const Problem p = ba_problem(3);
  const sim::World w(p, 17);
  PmArest s1(PmArestOptions{.batch_size = 6, .allow_retries = true});
  const auto plain = run_attack(p, w, s1, 40.0);

  FaultOptions fo;  // all rates zero, no suspension
  FaultModel fm(fo);
  AttackRunOptions ro;
  ro.fault = &fm;
  PmArest s2(PmArestOptions{.batch_size = 6, .allow_retries = true});
  const auto faulted = run_attack(p, w, s2, 40.0, ro);
  expect_traces_equal(plain, faulted);
  // The fault-free fast path leaves no outcome annotations behind.
  for (const auto& b : faulted.batches) EXPECT_TRUE(b.outcome.empty());

  // Default options are exactly the legacy runner too.
  PmArest s3(PmArestOptions{.batch_size = 6, .allow_retries = true});
  const auto defaulted = run_attack(p, w, s3, 40.0, AttackRunOptions{});
  expect_traces_equal(plain, defaulted);
}

TEST(FaultRun, TimeoutsConsumeAttemptsAndBudgetWithoutBenefit) {
  const Problem p = ba_problem(4);
  const sim::World w(p, 5);
  FaultOptions fo;
  fo.timeout_rate = 1.0;
  FaultModel fm(fo);
  AttackRunOptions ro;
  ro.fault = &fm;
  PmArest s(PmArestOptions{.batch_size = 5, .allow_retries = true,
                           .max_attempts_per_node = 2});
  const auto trace = run_attack(p, w, s, 30.0, ro);
  EXPECT_DOUBLE_EQ(trace.total_benefit(), 0.0);  // nothing ever delivered
  EXPECT_GT(trace.total_cost(), 0.0);            // but round trips were paid for
  EXPECT_EQ(count_outcomes(trace, RequestOutcome::kTimeout),
            static_cast<int>(trace.total_requests()));
  for (const auto& [u, a] : attempts_from_trace(trace)) EXPECT_LE(a, 2) << u;
}

TEST(FaultRun, ThrottlesChargeBudgetButConsumeNoAttempts) {
  const Problem p = ba_problem(4);
  const sim::World w(p, 5);
  FaultOptions fo;
  fo.throttle_rate = 1.0;
  FaultModel fm(fo);
  AttackRunOptions ro;
  ro.fault = &fm;
  PmArest s(PmArestOptions{.batch_size = 5, .max_attempts_per_node = 1});
  const auto trace = run_attack(p, w, s, 20.0, ro);
  EXPECT_DOUBLE_EQ(trace.total_benefit(), 0.0);
  EXPECT_DOUBLE_EQ(trace.total_cost(), 20.0);  // budget fully burned on bounces
  // A node can be re-requested past its attempt cap because throttles never
  // reach the user — that is what distinguishes them from timeouts.
  EXPECT_EQ(count_outcomes(trace, RequestOutcome::kThrottled),
            static_cast<int>(trace.total_requests()));
  for (const auto& [u, a] : attempts_from_trace(trace)) EXPECT_EQ(a, 0) << u;
}

TEST(FaultRun, SuspensionLockoutIsWaitedOutAndUncharged) {
  const Problem p = ba_problem(6);
  const sim::World w(p, 7);
  FaultOptions fo;
  fo.suspension.max_requests = 8;
  fo.suspension.window_ticks = 2;
  fo.suspension.lockout_ticks = 3;
  FaultModel fm(fo);
  AttackRunOptions ro;
  ro.fault = &fm;
  PmArest s(PmArestOptions{.batch_size = 10, .allow_retries = true});
  const auto trace = run_attack(p, w, s, 40.0, ro);
  EXPECT_GT(fm.counters().lockouts, 0u);
  EXPECT_GT(fm.counters().bounced, 0u);
  // Bounced requests are free: total cost counts only non-suspended sends.
  std::size_t charged = 0;
  for (const auto& b : trace.batches) {
    for (std::size_t i = 0; i < b.requests.size(); ++i) {
      const auto o = b.outcome.empty()
                         ? RequestOutcome::kDelivered
                         : static_cast<RequestOutcome>(b.outcome[i]);
      if (o != RequestOutcome::kSuspended) ++charged;
    }
  }
  EXPECT_DOUBLE_EQ(trace.total_cost(), static_cast<double>(charged));
  EXPECT_LE(trace.total_cost(), 40.0 + 1e-9);
  EXPECT_GT(trace.total_benefit(), 0.0);  // the attack still makes progress
}

TEST(RetryPolicy, DelaysAreDeterministicAndBounded) {
  RetryPolicy p;
  p.backoff = RetryBackoff::kExponential;
  p.base_delay = 1.0;
  p.multiplier = 2.0;
  p.max_delay = 8.0;
  p.jitter = 0.5;
  p.validate();
  for (NodeId u = 0; u < 20; ++u) {
    for (std::uint32_t a = 1; a <= 6; ++a) {
      const double d1 = p.delay_for(u, a);
      const double d2 = p.delay_for(u, a);
      EXPECT_DOUBLE_EQ(d1, d2);  // pure in (node, attempt)
      EXPECT_GE(d1, 0.0);
      EXPECT_LE(d1, 8.0 * 1.5 + 1e-9);  // max_delay * (1 + jitter)
    }
  }
  // Without jitter the ladder is exactly base * mult^(a-1), capped.
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.delay_for(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.delay_for(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(p.delay_for(0, 4), 8.0);
  EXPECT_DOUBLE_EQ(p.delay_for(0, 6), 8.0);  // capped
}

// Theorem 4 regression: at matched seeds, allowing retries never hurts the
// expected benefit — on BA and on ER topologies, with and without faults.
TEST(Theorem4, RetriesDoNotHurtOnBarabasiAlbert) {
  const Problem p = ba_problem(11);
  auto factory = [](bool retries) {
    return [retries](int) {
      PmArestOptions o;
      o.batch_size = 5;
      o.allow_retries = retries;
      return std::make_unique<PmArest>(o);
    };
  };
  const auto without = run_monte_carlo(p, factory(false), 6, 60.0, 21);
  const auto with = run_monte_carlo(p, factory(true), 6, 60.0, 21);
  EXPECT_GE(with.mean_benefit(), without.mean_benefit() - 1e-9);
}

TEST(Theorem4, RetriesDoNotHurtOnErdosRenyi) {
  const Problem p = er_problem(12);
  auto factory = [](bool retries) {
    return [retries](int) {
      PmArestOptions o;
      o.batch_size = 5;
      o.allow_retries = retries;
      return std::make_unique<PmArest>(o);
    };
  };
  const auto without = run_monte_carlo(p, factory(false), 6, 60.0, 22);
  const auto with = run_monte_carlo(p, factory(true), 6, 60.0, 22);
  EXPECT_GE(with.mean_benefit(), without.mean_benefit() - 1e-9);
}

TEST(Theorem4, RetriesHelpUnderFaultsWithBackoff) {
  const Problem p = ba_problem(13);
  FaultOptions fo;
  fo.timeout_rate = 0.25;
  fo.seed = 7;
  RetryPolicy retry;
  retry.backoff = RetryBackoff::kFixed;
  retry.base_delay = 1.0;
  auto factory = [](bool retries) {
    return [retries](int) {
      PmArestOptions o;
      o.batch_size = 5;
      o.allow_retries = retries;
      return std::make_unique<PmArest>(o);
    };
  };
  const auto without =
      run_monte_carlo(p, factory(false), 6, 60.0, 23, nullptr, &fo, nullptr);
  const auto with =
      run_monte_carlo(p, factory(true), 6, 60.0, 23, nullptr, &fo, &retry);
  EXPECT_GE(with.mean_benefit(), without.mean_benefit() - 1e-9);
}

// The sync and rolling-window runners share attempt-bookkeeping semantics:
// timeouts/drops consume attempt indices, throttles do not, and the per-node
// attempt cap binds in both.
TEST(FaultRun, AttemptBookkeepingAgreesBetweenSyncAndAsync) {
  const Problem p = ba_problem(14);
  const sim::World w(p, 9);
  FaultOptions fo;
  fo.timeout_rate = 0.25;
  fo.throttle_rate = 0.2;
  fo.seed = 31;
  RetryPolicy retry;
  retry.backoff = RetryBackoff::kFixed;
  retry.base_delay = 1.0;

  FaultModel sync_fm(fo);
  AttackRunOptions ro;
  ro.fault = &sync_fm;
  ro.retry = &retry;
  PmArest s(PmArestOptions{.batch_size = 5, .allow_retries = true,
                           .max_attempts_per_node = 2});
  const auto sync_trace = run_attack(p, w, s, 40.0, ro);

  FaultModel async_fm(fo);
  AsyncAttackOptions ao;
  ao.window = 5;
  ao.mean_delay = 10.0;
  ao.delay_model = ResponseDelayModel::kFixed;
  ao.allow_retries = true;
  ao.max_attempts_per_node = 2;
  ao.fault = &async_fm;
  ao.retry = &retry;
  const auto async_res = run_async_attack(p, w, ao, 40.0);

  for (const auto* trace : {&sync_trace, &async_res.trace}) {
    // Attempt caps hold even under fault churn...
    for (const auto& [u, a] : attempts_from_trace(*trace)) EXPECT_LE(a, 2) << u;
    // ...and every charged outcome (everything but suspension) hits budget.
    std::size_t entries = 0;
    for (const auto& b : trace->batches) entries += b.requests.size();
    EXPECT_DOUBLE_EQ(trace->total_cost(), static_cast<double>(entries));
    EXPECT_GT(count_outcomes(*trace, RequestOutcome::kTimeout), 0);
    EXPECT_GT(count_outcomes(*trace, RequestOutcome::kThrottled), 0);
  }
}

}  // namespace
}  // namespace recon::core
