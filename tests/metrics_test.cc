// Tests for RRS / RT-RRS vulnerability metrics and vulnerable-user ranking.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/rrs.h"

namespace recon::metrics {
namespace {

sim::AttackTrace make_trace(const std::vector<std::pair<int, double>>& batches,
                            double select_seconds = 0.01) {
  // Each entry: (#requests in batch, cumulative benefit after batch).
  sim::AttackTrace t;
  double cost = 0.0;
  double prev = 0.0;
  graph::NodeId next_node = 0;
  for (const auto& [n, q] : batches) {
    sim::BatchRecord b;
    for (int i = 0; i < n; ++i) {
      b.requests.push_back(next_node++);
      b.accepted.push_back(1);
    }
    cost += n;
    b.cost = n;
    b.cumulative_cost = cost;
    b.delta.friends = q - prev;
    b.cumulative.friends = q;
    prev = q;
    b.select_seconds = select_seconds;
    t.batches.push_back(std::move(b));
  }
  return t;
}

TEST(Rrs, ExpectedRequestsToThreshold) {
  // Trace 1 reaches Q=5 after 10 requests; trace 2 after 20.
  const std::vector<sim::AttackTrace> traces{
      make_trace({{5, 2.0}, {5, 6.0}}),
      make_trace({{5, 1.0}, {5, 2.0}, {5, 3.0}, {5, 5.0}}),
  };
  const RrsResult r = rrs(traces, 5.0);
  EXPECT_DOUBLE_EQ(r.expected_requests, 15.0);
  EXPECT_DOUBLE_EQ(r.reach_fraction, 1.0);
}

TEST(Rrs, UnreachedRunsExcluded) {
  const std::vector<sim::AttackTrace> traces{
      make_trace({{10, 8.0}}),
      make_trace({{10, 3.0}}),  // never reaches 5
  };
  const RrsResult r = rrs(traces, 5.0);
  EXPECT_DOUBLE_EQ(r.expected_requests, 10.0);
  EXPECT_DOUBLE_EQ(r.reach_fraction, 0.5);
}

TEST(Rrs, ZeroThresholdIsFree) {
  const std::vector<sim::AttackTrace> traces{make_trace({{5, 1.0}})};
  const RrsResult r = rrs(traces, 0.0);
  EXPECT_DOUBLE_EQ(r.expected_requests, 0.0);
  EXPECT_DOUBLE_EQ(r.reach_fraction, 1.0);
}

TEST(RtRrs, DelayDominatesSequentialAttacks) {
  // Sequential: 20 batches of 1; batch: 2 batches of 10. Same final benefit.
  const auto seq = make_trace(std::vector<std::pair<int, double>>(20, {1, 0.0}));
  auto seq2 = seq;
  seq2.batches.back().cumulative.friends = 10.0;
  const auto batch = make_trace({{10, 5.0}, {10, 10.0}});
  const double d = 300.0;  // 5 minutes
  const double rt_seq = rt_rrs({seq2}, d);
  const double rt_batch = rt_rrs({batch}, d);
  // 20 delays vs 2 delays for the same benefit: ~10x difference.
  EXPECT_NEAR(rt_seq / rt_batch, 10.0, 0.2);
}

TEST(RtRrs, NoDelayUsesComputeTimeOnly) {
  const auto t = make_trace({{10, 5.0}, {10, 10.0}}, 0.5);
  EXPECT_NEAR(rt_rrs({t}, 0.0), 1.0 / 10.0, 1e-9);  // 2 * 0.5s / 10 benefit
}

TEST(RtRrs, InfiniteWhenNoBenefit) {
  const auto t = make_trace({{10, 0.0}});
  EXPECT_TRUE(std::isinf(rt_rrs({t}, 60.0)));
  EXPECT_TRUE(std::isinf(rt_rrs({}, 60.0)));
}

TEST(RtRrs, AttackTimeComputation) {
  const auto t = make_trace({{5, 1.0}, {5, 2.0}, {5, 3.0}}, 0.25);
  EXPECT_NEAR(attack_time_seconds(t, 10.0), 3 * (0.25 + 10.0), 1e-9);
}

TEST(StochasticDelay, FixedModelMatchesDeterministic) {
  const auto t = make_trace({{10, 5.0}, {10, 10.0}}, 0.25);
  EXPECT_NEAR(attack_time_stochastic(t, 100.0, DelayModel::kFixed, 1),
              attack_time_seconds(t, 100.0), 1e-9);
}

TEST(StochasticDelay, ExponentialMaxGrowsLikeHarmonic) {
  // One batch of k requests: E[max of k Exp(d)] = d * H_k.
  auto mean_time = [&](int k) {
    const auto t = make_trace({{k, 1.0}}, 0.0);
    double total = 0.0;
    const int draws = 4000;
    for (int i = 0; i < draws; ++i) {
      total += attack_time_stochastic(t, 60.0, DelayModel::kExponential,
                                      static_cast<std::uint64_t>(i));
    }
    return total / draws;
  };
  double h10 = 0.0;
  for (int i = 1; i <= 10; ++i) h10 += 1.0 / i;
  EXPECT_NEAR(mean_time(1), 60.0, 3.0);
  EXPECT_NEAR(mean_time(10), 60.0 * h10, 8.0);
}

TEST(StochasticDelay, LogNormalMeanMatches) {
  const auto t = make_trace({{1, 1.0}}, 0.0);
  double total = 0.0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    total += attack_time_stochastic(t, 50.0, DelayModel::kLogNormal,
                                    static_cast<std::uint64_t>(i));
  }
  EXPECT_NEAR(total / draws, 50.0, 3.0);
}

TEST(StochasticDelay, RtRrsStochasticExceedsFixedForBatches) {
  // The slowest-response wait makes stochastic delays strictly worse than
  // fixed ones for batch attacks (Jensen / extreme-value effect).
  const auto t = make_trace({{15, 5.0}, {15, 10.0}}, 0.0);
  const double fixed = rt_rrs({t}, 300.0);
  const double stochastic =
      rt_rrs_stochastic({t}, 300.0, DelayModel::kExponential, 7, 50);
  EXPECT_GT(stochastic, fixed * 1.5);
}

TEST(StochasticDelay, Validation) {
  const auto t = make_trace({{2, 1.0}});
  EXPECT_THROW(attack_time_stochastic(t, -1.0, DelayModel::kExponential, 1),
               std::invalid_argument);
  EXPECT_TRUE(std::isinf(rt_rrs_stochastic({}, 10.0, DelayModel::kFixed, 1)));
}

TEST(VulnerableUsers, RanksByRequestFrequency) {
  sim::AttackTrace t1, t2;
  sim::BatchRecord b1;
  b1.requests = {7, 8, 9};
  b1.accepted = {1, 1, 1};
  t1.batches.push_back(b1);
  sim::BatchRecord b2;
  b2.requests = {7, 8};
  b2.accepted = {1, 0};
  t2.batches.push_back(b2);
  const auto ranked = vulnerable_users({t1, t2}, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, 7u);
  EXPECT_DOUBLE_EQ(ranked[0].second, 1.0);  // requested in 2/2 runs
  EXPECT_EQ(ranked[1].first, 8u);
}

TEST(VulnerableUsers, EmptyTraces) {
  EXPECT_TRUE(vulnerable_users({}, 5).empty());
}

}  // namespace
}  // namespace recon::metrics
