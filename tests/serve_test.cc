// Campaign service tests: concurrent campaigns byte-identical to sequential
// runs at several pool sizes, pause/resume from autosnapshots, cancel,
// deterministic ids, mid-campaign trace readability, and the line protocol.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "service/protocol.h"
#include "service/registry.h"
#include "sim/problem.h"
#include "sim/trace_io.h"
#include "sim/world.h"
#include "util/rng.h"

namespace recon::service {
namespace {

using sim::Problem;

Problem ba_problem(int seed, graph::NodeId n = 300) {
  sim::ProblemOptions opts;
  opts.num_targets = 30;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.95),
                               seed + 1),
      opts);
}

Problem er_problem(int seed, graph::NodeId n = 250) {
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.base_acceptance = 0.35;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, 4 * n, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.9),
                               seed + 1),
      opts);
}

/// mkdtemp-backed scratch dir, removed (one level deep) on destruction.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/recon_serve_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    if (DIR* d = ::opendir(path.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") {
          std::remove((path + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }
  std::string path;
};

/// The campaign a spec describes, run directly through core::run_attack —
/// the sequential `recon attack` ground truth the service must match.
sim::AttackTrace reference_run(const Problem& p, const CampaignSpec& spec) {
  core::PmArestOptions o;
  o.batch_size = spec.batch_size;
  o.allow_retries = spec.allow_retries;
  core::PmArest strategy(o);
  const sim::World world(p, util::derive_seed(spec.seed, 0));
  return core::run_attack(p, world, strategy, spec.budget);
}

/// Serialized trace with the one wall-clock field (sel=) zeroed: equal
/// strings mean byte-identical trace files.
std::string canonical(sim::AttackTrace t) {
  for (auto& b : t.batches) b.select_seconds = 0.0;
  std::ostringstream os;
  sim::write_traces(os, {std::move(t)});
  return os.str();
}

std::string canonical_file(const std::string& path) {
  auto traces = sim::read_traces_file(path);
  EXPECT_EQ(traces.size(), 1u) << path;
  return canonical(std::move(traces.front()));
}

TEST(CampaignService, ConcurrentCampaignsMatchSequentialAtEveryPoolSize) {
  const Problem ba = ba_problem(3);
  const Problem er = er_problem(5);
  for (const unsigned threads : {1u, 2u, 8u}) {
    TempDir dir;
    CampaignRegistry registry({dir.path, threads});
    registry.register_problem("ba", ba_problem(3));
    registry.register_problem("er", er_problem(5));

    std::vector<std::pair<std::string, CampaignSpec>> submitted;
    for (int i = 0; i < 8; ++i) {
      CampaignSpec spec;
      spec.problem = (i % 2 == 0) ? "ba" : "er";
      spec.batch_size = 3 + (i % 3);
      spec.budget = 24.0;
      spec.seed = static_cast<std::uint64_t>(100 + i);
      submitted.emplace_back(registry.submit(spec), spec);
    }
    for (const auto& [id, spec] : submitted) {
      const CampaignStatus st = registry.wait(id);
      ASSERT_EQ(st.state, CampaignState::kCompleted)
          << id << " at " << threads << " threads: " << st.error;
      const Problem& p = spec.problem == "ba" ? ba : er;
      EXPECT_EQ(canonical_file(st.trace_path), canonical(reference_run(p, spec)))
          << id << " diverged from the sequential run at " << threads
          << " threads";
      EXPECT_GT(st.rounds, 0u);
      EXPECT_DOUBLE_EQ(st.spent, spec.budget);
    }
  }
}

TEST(CampaignService, DeterministicIdsHashTheSpec) {
  TempDir dir;
  CampaignRegistry registry({dir.path, 2});
  registry.register_problem("ba", ba_problem(3));
  CampaignSpec spec;
  spec.problem = "ba";
  spec.budget = 6.0;
  const std::string a = registry.submit(spec);
  const std::string b = registry.submit(spec);
  // Same spec: same hash suffix, distinct submission sequence numbers.
  EXPECT_EQ(a.substr(a.find('-')), b.substr(b.find('-')));
  EXPECT_NE(a, b);
  CampaignSpec other = spec;
  other.seed += 1;
  const std::string c = registry.submit(other);
  EXPECT_NE(c.substr(c.find('-')), a.substr(a.find('-')));
  registry.wait(a);
  registry.wait(b);
  registry.wait(c);
}

TEST(CampaignService, PauseResumeFromAutosnapshotIsBitIdentical) {
  const Problem ba = ba_problem(7);
  TempDir dir;
  CampaignRegistry registry({dir.path, 2});
  registry.register_problem("ba", ba_problem(7));

  CampaignSpec spec;
  spec.problem = "ba";
  spec.batch_size = 3;
  spec.budget = 120.0;  // ~40 rounds: plenty of room to pause mid-flight
  spec.seed = 11;
  spec.checkpoint_every_rounds = 1;
  const std::string id = registry.submit(spec);

  // Poll until a couple of rounds have completed, then pause.
  for (int i = 0; i < 2000 && registry.status(id).rounds < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (registry.pause(id)) {
    const CampaignStatus paused = registry.status(id);
    ASSERT_EQ(paused.state, CampaignState::kPaused);
    // The streamed trace is readable mid-campaign (no `end` marker needed).
    const auto partial = sim::read_traces_file_recover(paused.trace_path);
    ASSERT_EQ(partial.size(), 1u);
    EXPECT_EQ(partial.front().batches.size(), paused.rounds);
    EXPECT_LT(paused.spent, spec.budget);

    ASSERT_TRUE(registry.resume(id));
    EXPECT_FALSE(registry.resume(id));  // not paused anymore
  }
  const CampaignStatus done = registry.wait(id);
  ASSERT_EQ(done.state, CampaignState::kCompleted) << done.error;
  EXPECT_EQ(canonical_file(done.trace_path), canonical(reference_run(ba, spec)))
      << "resumed campaign diverged from the uninterrupted run";
}

TEST(CampaignService, CancelStopsACampaignTerminally) {
  TempDir dir;
  CampaignRegistry registry({dir.path, 2});
  registry.register_problem("ba", ba_problem(9));
  CampaignSpec spec;
  spec.problem = "ba";
  spec.batch_size = 2;
  spec.budget = 200.0;
  const std::string id = registry.submit(spec);
  EXPECT_TRUE(registry.cancel(id));
  const CampaignStatus st = registry.wait(id);
  EXPECT_TRUE(is_terminal(st.state));
  EXPECT_FALSE(registry.cancel(id));  // already terminal
  EXPECT_FALSE(registry.pause(id));
  EXPECT_FALSE(registry.resume(id));
}

TEST(CampaignService, RejectsBadSpecsSynchronously) {
  TempDir dir;
  CampaignRegistry registry({dir.path, 2});
  registry.register_problem("ba", ba_problem(3));
  CampaignSpec spec;
  spec.problem = "nope";
  EXPECT_THROW(registry.submit(spec), std::invalid_argument);
  spec.problem = "ba";
  spec.strategy = "quantum";
  EXPECT_THROW(registry.submit(spec), std::invalid_argument);
  spec.strategy = "pm";
  spec.planner = "sideways";
  EXPECT_THROW(registry.submit(spec), std::invalid_argument);
  spec.planner = "off";
  spec.budget = -1.0;
  EXPECT_THROW(registry.submit(spec), std::invalid_argument);
  EXPECT_THROW(registry.status("c99-0"), std::invalid_argument);
}

TEST(CampaignService, ReplacingALiveProblemThrows) {
  TempDir dir;
  CampaignRegistry registry({dir.path, 2});
  registry.register_problem("ba", ba_problem(3));
  CampaignSpec spec;
  spec.problem = "ba";
  spec.budget = 150.0;
  const std::string id = registry.submit(spec);
  EXPECT_THROW(registry.register_problem("ba", ba_problem(4)),
               std::invalid_argument);
  registry.cancel(id);
  registry.wait(id);
  EXPECT_NO_THROW(registry.register_problem("ba", ba_problem(4)));
}

TEST(CampaignProtocol, SessionOverStreams) {
  TempDir dir;
  CampaignRegistry registry({dir.path, 2});
  registry.register_problem("ba", ba_problem(3));

  std::istringstream in(
      "PROBLEMS\n"
      "# a comment, ignored\n"
      "\n"
      "SUBMIT problem=ba k=4 budget=12 seed=9\n"
      "LIST\n"
      "BOGUS\n"
      "SUBMIT problem=nope\n"
      "SUBMIT k=broken\n"
      "STATUS c999-0\n"
      "SHUTDOWN\n");
  std::ostringstream out;
  run_protocol(in, out, registry);

  std::vector<std::string> lines;
  std::istringstream parsed(out.str());
  for (std::string l; std::getline(parsed, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 8u) << out.str();
  EXPECT_EQ(lines[0], "OK 1 ba");
  EXPECT_EQ(lines[1].rfind("OK c0-", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("OK 1 c0-", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3], "ERR unknown command 'BOGUS'");
  EXPECT_EQ(lines[4], "ERR unknown problem 'nope'");
  EXPECT_EQ(lines[5].rfind("ERR bad value for k", 0), 0u) << lines[5];
  EXPECT_EQ(lines[6], "ERR unknown campaign 'c999-0'");
  EXPECT_EQ(lines[7], "OK bye");

  // WAIT through the one-line handler: the campaign settles to completed.
  const std::string id = lines[1].substr(3);
  bool shutdown = false;
  const std::string waited =
      handle_protocol_line("WAIT " + id, registry, &shutdown);
  EXPECT_FALSE(shutdown);
  EXPECT_EQ(waited.rfind("OK " + id + " state=completed", 0), 0u) << waited;
  const std::string paused =
      handle_protocol_line("PAUSE " + id, registry, &shutdown);
  EXPECT_EQ(paused.rfind("ERR", 0), 0u) << paused;  // not pausable anymore
}

}  // namespace
}  // namespace recon::service
