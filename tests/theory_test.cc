// Tests for the theory constructions: approximation constants, the
// Max-Cover reduction of Thm. 1, the auxiliary graph Ga of Sec. IV-C, and
// empirical checks of the paper's performance bounds on brute-forceable
// instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/attack.h"
#include "core/batch_select.h"
#include "core/pm_arest.h"
#include "core/theory.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/world.h"
#include "solver/fob.h"
#include "util/rng.h"

namespace recon::core {
namespace {

using graph::NodeId;

TEST(Ratios, MatchClosedForms) {
  EXPECT_NEAR(ratio_one_minus_inv_e(), 0.6321, 1e-4);
  EXPECT_NEAR(ratio_pm_arest(), 0.4685, 1e-4);
  EXPECT_NEAR(ratio_batch_vs_sequential(), 0.3296, 1e-3);
  // Ordering: sequential guarantee > batch guarantee > batch-vs-seq gap.
  EXPECT_GT(ratio_one_minus_inv_e(), ratio_pm_arest());
  EXPECT_GT(ratio_pm_arest(), ratio_batch_vs_sequential());
}

MaxCoverInstance paper_figure1() {
  // Fig. 1: S1={e1,e2}, S2={e2,e3,e4}, S3={e4,e5} over 5 elements, k'=2.
  MaxCoverInstance inst;
  inst.num_elements = 5;
  inst.sets = {{0, 1}, {1, 2, 3}, {3, 4}};
  inst.k = 2;
  return inst;
}

TEST(MaxCoverReduction, StructureMatchesFigure1) {
  const auto red = reduce_max_cover(paper_figure1());
  const auto& p = red.problem;
  EXPECT_EQ(p.graph.num_nodes(), 8u);  // 3 sets + 5 elements
  EXPECT_EQ(p.graph.num_edges(), 7u);  // sum of set sizes
  EXPECT_DOUBLE_EQ(red.budget, 2.0);
  for (NodeId u : red.set_nodes) {
    EXPECT_DOUBLE_EQ(p.benefit.bf[u], 0.0);
    EXPECT_DOUBLE_EQ(p.benefit.bfof[u], 0.0);
  }
  for (NodeId v : red.element_nodes) {
    EXPECT_DOUBLE_EQ(p.benefit.bf[v], 1.0);
    EXPECT_DOUBLE_EQ(p.benefit.bfof[v], 1.0);
  }
  for (graph::EdgeId e = 0; e < p.graph.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(p.graph.edge_prob(e), 1.0);
  }
}

TEST(MaxCoverReduction, BruteForceOptimum) {
  // Every pair of sets covers exactly 4 of the 5 elements.
  EXPECT_EQ(max_cover_brute_force(paper_figure1()), 4u);
}

TEST(MaxCoverReduction, CrawlingSolvesCover) {
  // Greedy Max-Crawling on the reduced instance recovers an optimal cover on
  // instances where greedy is optimal, and never exceeds the optimum.
  for (int seed = 1; seed <= 8; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    MaxCoverInstance inst;
    inst.num_elements = 12;
    inst.sets.resize(6);
    for (auto& s : inst.sets) {
      const std::size_t size = 1 + rng.below(5);
      for (std::size_t i = 0; i < size; ++i) {
        s.push_back(static_cast<std::uint32_t>(rng.below(12)));
      }
    }
    inst.k = 3;
    const std::size_t opt = max_cover_brute_force(inst);
    const auto red = reduce_max_cover(inst);

    // Everything is deterministic (p = q = 1): one batch of k set-nodes.
    const sim::World w(red.problem, 7);
    PmArest strategy(PmArestOptions{.batch_size = static_cast<int>(inst.k)});
    const auto trace = run_attack(red.problem, w, strategy, red.budget);
    const double q = trace.total_benefit();
    // Coverage achieved by the crawl (as FoF/friend benefit of elements).
    EXPECT_LE(q, static_cast<double>(opt) + 1e-9) << "seed " << seed;
    EXPECT_GE(q, (1.0 - 1.0 / std::exp(1.0)) * static_cast<double>(opt) - 1e-9)
        << "seed " << seed;

    // The recovered cover is a valid set selection of size <= k.
    std::vector<NodeId> friends;
    for (const auto& b : trace.batches) {
      for (std::size_t i = 0; i < b.requests.size(); ++i) {
        if (b.accepted[i]) friends.push_back(b.requests[i]);
      }
    }
    const auto cover = cover_from_friends(red, friends);
    EXPECT_LE(cover.size(), inst.k);
    for (std::size_t s : cover) EXPECT_LT(s, inst.sets.size());
  }
}

TEST(MaxCoverReduction, GreedyPrefersSetNodes) {
  // Substituting a set node for an element node never loses benefit, so the
  // greedy should befriend set nodes (the proof's D̃ >= D' argument).
  const auto red = reduce_max_cover(paper_figure1());
  sim::Observation obs(red.problem);
  BatchSelectOptions opts;
  opts.batch_size = 2;
  const auto batch = batch_select(obs, opts);
  ASSERT_EQ(batch.size(), 2u);
  for (NodeId u : batch) {
    EXPECT_LT(u, red.set_nodes.size()) << "picked an element node";
  }
}

TEST(MaxCoverReduction, Validation) {
  MaxCoverInstance inst;
  inst.num_elements = 2;
  inst.sets = {{0, 5}};  // element 5 out of range
  inst.k = 1;
  EXPECT_THROW(reduce_max_cover(inst), std::invalid_argument);
  inst.sets = {{0}};
  inst.k = 2;
  EXPECT_THROW(reduce_max_cover(inst), std::invalid_argument);
}

sim::Problem aux_problem(int seed) {
  sim::ProblemOptions opts;
  opts.num_targets = 8;
  opts.base_acceptance = 0.35;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(25, 50, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.9), seed),
      opts);
}

TEST(AuxiliaryGraph, StructureMatchesFigure3) {
  const sim::Problem p = aux_problem(1);
  const auto ga = build_auxiliary_graph(p, 4, 9);
  EXPECT_EQ(ga.original_nodes, 25u);
  EXPECT_EQ(ga.attempts, 4u);
  EXPECT_EQ(ga.num_nodes(), 25u * 5u);
  EXPECT_EQ(ga.hub_graph.num_edges(), p.graph.num_edges());
  // Request ids are distinct and disjoint from hubs.
  EXPECT_EQ(ga.request_node(0, 0), 25u);
  EXPECT_EQ(ga.request_node(24, 3), 25u + 24u * 4u + 3u);
  // Request probabilities live near the base acceptance rate.
  for (NodeId i = 0; i < ga.original_nodes; ++i) {
    for (std::uint32_t j = 0; j < ga.attempts; ++j) {
      EXPECT_NEAR(ga.request_prob(i, j), 0.35, 0.35 * 0.06);
    }
  }
}

TEST(AuxiliaryGraph, FriendProbabilityMatchesDirectModel) {
  // Pr[node becomes friend within m attempts] on Ga must match the direct
  // per-attempt Bernoulli model: 1 - Π_j (1 - q_ij).
  const sim::Problem p = aux_problem(2);
  const auto ga = build_auxiliary_graph(p, 3, 5);
  const NodeId u = 7;
  double expected = 1.0;
  for (std::uint32_t j = 0; j < 3; ++j) expected *= 1.0 - ga.request_prob(u, j);
  expected = 1.0 - expected;

  std::vector<std::uint32_t> requested(ga.original_nodes, 0);
  requested[u] = 3;
  int friends = 0;
  const int n = 20000;
  for (int s = 0; s < n; ++s) {
    const auto real = sample_auxiliary_realization(ga, static_cast<std::uint64_t>(s));
    friends += auxiliary_friends(ga, real, requested)[u];
  }
  EXPECT_NEAR(static_cast<double>(friends) / n, expected, 0.015);
}

TEST(AuxiliaryGraph, FofViaLivePaths) {
  const sim::Problem p = aux_problem(3);
  const auto ga = build_auxiliary_graph(p, 2, 5);
  std::vector<std::uint32_t> requested(ga.original_nodes, 2);  // request everyone
  const auto real = sample_auxiliary_realization(ga, 11);
  const auto friends = auxiliary_friends(ga, real, requested);
  const auto fofs = auxiliary_fofs(ga, real, friends);
  for (NodeId v = 0; v < ga.original_nodes; ++v) {
    if (!fofs[v]) continue;
    EXPECT_FALSE(friends[v]) << "friend double-counted as FoF";
    // Must have a live hub edge to some friend.
    bool justified = false;
    const auto nbrs = ga.hub_graph.neighbors(v);
    const auto eids = ga.hub_graph.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size() && !justified; ++i) {
      justified = friends[nbrs[i]] && real.hub_edge_live[eids[i]];
    }
    EXPECT_TRUE(justified) << "node " << v;
  }
}

TEST(AuxiliaryGraph, Validation) {
  const sim::Problem p = aux_problem(4);
  EXPECT_THROW(build_auxiliary_graph(p, 0, 1), std::invalid_argument);
  const auto ga = build_auxiliary_graph(p, 2, 1);
  EXPECT_THROW(auxiliary_friends(ga, {}, std::vector<std::uint32_t>(3, 0)),
               std::invalid_argument);
}

// Empirical check of the PM-AReST guarantee (Thm. 2): on small instances the
// achieved expected benefit must exceed (1 - e^{-(1-1/e)}) times the optimal
// *non-adaptive* batch value (a lower bound on the adaptive optimum, making
// the assertion conservative... the adaptive optimum dominates non-adaptive,
// so we check against the non-adaptive optimum scaled by the batch ratio).
TEST(Bounds, PmArestBeatsGuaranteeOnSmallInstances) {
  for (int seed = 1; seed <= 5; ++seed) {
    sim::ProblemOptions opts;
    opts.num_targets = 6;
    opts.base_acceptance = 0.5;
    opts.seed = static_cast<std::uint64_t>(seed);
    const sim::Problem p = sim::make_problem(
        graph::assign_edge_probs(graph::erdos_renyi_gnm(14, 28, seed),
                                 graph::EdgeProbModel::uniform(0.3, 0.9), seed),
        opts);
    const std::size_t budget = 6;

    // Non-adaptive optimum: best fixed set of 6 nodes under the SAA
    // objective with many scenarios.
    sim::Observation fresh(p);
    const auto scenarios = solver::sample_scenarios(fresh, 4000, 77);
    const auto candidates = solver::fob_candidates(fresh, false);
    const auto nonadaptive =
        solver::fob_exact(fresh, scenarios, budget, candidates, {});
    ASSERT_TRUE(nonadaptive.exact);

    // PM-AReST with k = 3 (two adaptive batches), many Monte-Carlo runs.
    const auto mc = run_monte_carlo(
        p,
        [](int) { return std::make_unique<PmArest>(PmArestOptions{.batch_size = 3}); },
        200, static_cast<double>(budget), 31);
    // Adaptivity should let PM-AReST beat the guarantee comfortably; assert
    // the theorem's floor against the non-adaptive OPT (a valid lower bound
    // on the adaptive OPT the theorem references... the assertion holds a
    // fortiori if PM even beats non-adaptive OPT outright).
    EXPECT_GE(mc.mean_benefit(), ratio_pm_arest() * nonadaptive.objective * 0.95)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace recon::core
