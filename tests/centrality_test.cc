// Tests for centrality measures against hand-computed values and known
// structural facts.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/centrality.h"
#include "graph/generators.h"

namespace recon::graph {
namespace {

Graph path5() {
  // 0 - 1 - 2 - 3 - 4
  GraphBuilder b(5);
  for (NodeId u = 0; u < 4; ++u) b.add_edge(u, u + 1);
  return b.build();
}

TEST(Betweenness, PathGraphHandComputed) {
  const auto c = betweenness_centrality(path5());
  // Middle node 2 lies on paths {0,1}x{3,4} plus (1,3): 4 pairs... enumerate:
  // pairs through 2: (0,3),(0,4),(1,3),(1,4) and (0,4),(1,4) also pass via
  // others? On a path every pair has a unique shortest path.
  // Node 1: pairs (0,2),(0,3),(0,4) -> 3. Node 2: (0,3),(0,4),(1,3),(1,4) -> 4.
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
  EXPECT_DOUBLE_EQ(c[2], 4.0);
  EXPECT_DOUBLE_EQ(c[3], 3.0);
  EXPECT_DOUBLE_EQ(c[4], 0.0);
}

TEST(Betweenness, StarCenterTakesAll) {
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.add_edge(0, v);
  const auto c = betweenness_centrality(b.build());
  // Center carries all C(4,2) = 6 leaf pairs.
  EXPECT_DOUBLE_EQ(c[0], 6.0);
  for (NodeId v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(c[v], 0.0);
}

TEST(Betweenness, SplitsOverEqualPaths) {
  // A 4-cycle: each pair of opposite nodes has two shortest paths; each
  // intermediate node gets credit 1/2 per opposite pair -> each node 0.5.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  const auto c = betweenness_centrality(b.build());
  for (NodeId u = 0; u < 4; ++u) EXPECT_DOUBLE_EQ(c[u], 0.5);
}

TEST(Harmonic, PathGraphHandComputed) {
  const auto c = harmonic_centrality(path5());
  // Node 0: 1/1 + 1/2 + 1/3 + 1/4.
  EXPECT_NEAR(c[0], 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  // Node 2: 1/2 + 1/1 + 1/1 + 1/2 = 3.
  EXPECT_NEAR(c[2], 3.0, 1e-12);
  EXPECT_GT(c[2], c[0]);  // the middle is closer to everyone
}

TEST(Harmonic, DisconnectedIsFinite) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  // 2 and 3 isolated.
  b.add_edge(2, 3);
  const auto c = harmonic_centrality(b.build());
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
}

TEST(CoreNumbers, CliqueWithTail) {
  // K4 (nodes 0..3) plus a path 3-4-5: clique nodes have core 3, the tail 1.
  GraphBuilder b(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.add_edge(u, v);
  }
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const auto core = core_numbers(b.build());
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(core[u], 3u) << u;
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(CoreNumbers, RingIsTwoCore) {
  GraphBuilder b(6);
  for (NodeId u = 0; u < 6; ++u) b.add_edge(u, (u + 1) % 6);
  const auto core = core_numbers(b.build());
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(core[u], 2u);
}

TEST(CoreNumbers, MatchesPeelingDefinitionOnRandomGraphs) {
  // Property: in the subgraph induced by {v : core(v) >= k}, every node has
  // at least k neighbors inside the subgraph (for k = its own core number).
  const Graph g = erdos_renyi_gnm(120, 400, 9);
  const auto core = core_numbers(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::size_t inside = 0;
    for (NodeId v : g.neighbors(u)) inside += core[v] >= core[u];
    EXPECT_GE(inside, core[u]) << "node " << u;
  }
}

TEST(TopNodes, OrdersAndTruncates) {
  const auto top = top_nodes({0.5, 2.0, 1.0, 2.0}, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties break by id
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(Betweenness, HubsDominateInBaGraphs) {
  const Graph g = barabasi_albert(300, 3, 7);
  const auto c = betweenness_centrality(g);
  const auto top = top_nodes(c, 5);
  // The top-betweenness nodes should be high-degree hubs.
  const auto stats_max = [&] {
    NodeId best = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (g.degree(u) > g.degree(best)) best = u;
    }
    return best;
  }();
  EXPECT_NE(std::find(top.begin(), top.end(), stats_max), top.end());
}

}  // namespace
}  // namespace recon::graph
