// Checkpoint/resume tests: round-trip fidelity and bit-identical resumption
// of interrupted attacks, with and without faults and retry backoff.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/attack.h"
#include "core/baselines.h"
#include "core/checkpoint.h"
#include "core/pm_arest.h"
#include "core/retry_policy.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/problem.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

Problem test_problem(int seed, NodeId n = 100) {
  sim::ProblemOptions opts;
  opts.num_targets = 20;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.95), seed + 1),
      opts);
}

/// Trace equality modulo select_seconds (wall clock, never reproducible).
void expect_traces_equal(const sim::AttackTrace& a, const sim::AttackTrace& b) {
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].requests, b.batches[i].requests) << "batch " << i;
    EXPECT_EQ(a.batches[i].accepted, b.batches[i].accepted) << "batch " << i;
    EXPECT_EQ(a.batches[i].outcome, b.batches[i].outcome) << "batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].cost, b.batches[i].cost) << "batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].cumulative_cost, b.batches[i].cumulative_cost);
    EXPECT_DOUBLE_EQ(a.batches[i].delta.total(), b.batches[i].delta.total());
    EXPECT_DOUBLE_EQ(a.batches[i].cumulative.total(), b.batches[i].cumulative.total());
  }
}

struct TempFile {
  explicit TempFile(const std::string& name) : path("/tmp/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Checkpoint, StreamRoundTripPreservesEverything) {
  const Problem p = test_problem(1);
  const sim::World w(p, 77);
  RetryPolicy retry;
  retry.backoff = RetryBackoff::kFixed;
  retry.base_delay = 2.0;
  sim::FaultModel fault(
      [] {
        sim::FaultOptions fo;
        fo.timeout_rate = 0.3;
        fo.seed = 5;
        return fo;
      }());
  AttackRunOptions ro;
  ro.fault = &fault;
  ro.retry = &retry;
  TempFile f("recon_ckpt_roundtrip.ckpt");
  ro.stop_after_rounds = 4;
  ro.checkpoint_path = f.path;
  PmArest run_strategy(PmArestOptions{.batch_size = 5, .allow_retries = true});
  run_attack(p, w, run_strategy, 50.0, ro);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  EXPECT_EQ(cp.world_seed, 77u);
  EXPECT_DOUBLE_EQ(cp.budget, 50.0);
  EXPECT_EQ(cp.round, 4u);
  EXPECT_TRUE(cp.has_fault);
  EXPECT_EQ(cp.strategy_name, run_strategy.name());
  EXPECT_FALSE(cp.strategy_state.empty());
  EXPECT_EQ(cp.trace.batches.size(), 4u);

  // Serialize the parsed checkpoint again: the round trip must be lossless.
  std::ostringstream out;
  write_checkpoint(out, cp);
  std::istringstream in(out.str());
  const AttackCheckpoint cp2 = read_checkpoint(in);
  EXPECT_EQ(cp2.node_states, cp.node_states);
  EXPECT_EQ(cp2.edge_states, cp.edge_states);
  EXPECT_EQ(cp2.attempts, cp.attempts);
  EXPECT_EQ(cp2.friends, cp.friends);
  EXPECT_EQ(cp2.retry_after, cp.retry_after);
  EXPECT_EQ(cp2.fault.sends, cp.fault.sends);
  EXPECT_EQ(cp2.fault.window, cp.fault.window);
  EXPECT_EQ(cp2.strategy_state, cp.strategy_state);
  expect_traces_equal(cp2.trace, cp.trace);
}

TEST(Checkpoint, ResumeIsBitIdenticalPlain) {
  const Problem p = test_problem(2);
  const sim::World w(p, 42);
  PmArest full_strategy(PmArestOptions{.batch_size = 6, .allow_retries = true});
  const auto full = run_attack(p, w, full_strategy, 45.0);

  TempFile f("recon_ckpt_plain.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 3;
  stop.checkpoint_path = f.path;
  PmArest first_half(PmArestOptions{.batch_size = 6, .allow_retries = true});
  run_attack(p, w, first_half, 45.0, stop);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  const sim::World resumed_world(p, cp.world_seed);
  AttackRunOptions resume;
  resume.resume = &cp;
  PmArest second_half(PmArestOptions{.batch_size = 6, .allow_retries = true});
  const auto resumed = run_attack(p, resumed_world, second_half, 45.0, resume);
  expect_traces_equal(full, resumed);
}

TEST(Checkpoint, ResumeIsBitIdenticalUnderFaultsAndRetries) {
  const Problem p = test_problem(3);
  const sim::World w(p, 43);
  sim::FaultOptions fo;
  fo.timeout_rate = 0.2;
  fo.throttle_rate = 0.15;
  fo.suspension.max_requests = 20;
  fo.suspension.window_ticks = 3;
  fo.suspension.lockout_ticks = 2;
  fo.seed = 9;
  RetryPolicy retry;
  retry.backoff = RetryBackoff::kExponential;
  retry.base_delay = 1.0;
  retry.max_delay = 4.0;
  retry.jitter = 0.25;

  auto make_options = [&](sim::FaultModel& fm) {
    AttackRunOptions o;
    o.fault = &fm;
    o.retry = &retry;
    return o;
  };

  sim::FaultModel fm_full(fo);
  PmArest full_strategy(PmArestOptions{.batch_size = 6, .allow_retries = true});
  const auto full = run_attack(p, w, full_strategy, 45.0, make_options(fm_full));

  TempFile f("recon_ckpt_faulted.ckpt");
  sim::FaultModel fm_half(fo);
  auto stop = make_options(fm_half);
  stop.stop_after_rounds = 3;
  stop.checkpoint_path = f.path;
  PmArest first_half(PmArestOptions{.batch_size = 6, .allow_retries = true});
  run_attack(p, w, first_half, 45.0, stop);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  const sim::World resumed_world(p, cp.world_seed);
  sim::FaultModel fm_resume(fo);  // state overwritten by apply_checkpoint
  auto resume = make_options(fm_resume);
  resume.resume = &cp;
  PmArest second_half(PmArestOptions{.batch_size = 6, .allow_retries = true});
  const auto resumed = run_attack(p, resumed_world, second_half, 45.0, resume);
  expect_traces_equal(full, resumed);
}

TEST(Checkpoint, PeriodicCheckpointsResumeFromLastOne) {
  const Problem p = test_problem(4);
  const sim::World w(p, 44);
  PmArest full_strategy(PmArestOptions{.batch_size = 5});
  const auto full = run_attack(p, w, full_strategy, 30.0);

  TempFile f("recon_ckpt_periodic.ckpt");
  AttackRunOptions stop;
  stop.checkpoint_every_rounds = 2;
  stop.checkpoint_path = f.path;
  stop.stop_after_rounds = 4;
  PmArest first_half(PmArestOptions{.batch_size = 5});
  run_attack(p, w, first_half, 30.0, stop);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  EXPECT_EQ(cp.round, 4u);
  const sim::World resumed_world(p, cp.world_seed);
  AttackRunOptions resume;
  resume.resume = &cp;
  PmArest second_half(PmArestOptions{.batch_size = 5});
  const auto resumed = run_attack(p, resumed_world, second_half, 30.0, resume);
  expect_traces_equal(full, resumed);
}

TEST(Checkpoint, StrategyMismatchIsRejected) {
  const Problem p = test_problem(5);
  const sim::World w(p, 45);
  TempFile f("recon_ckpt_mismatch.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 2;
  stop.checkpoint_path = f.path;
  PmArest pm(PmArestOptions{.batch_size = 5});
  run_attack(p, w, pm, 30.0, stop);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  AttackRunOptions resume;
  resume.resume = &cp;
  RandomStrategy random(5, 123);
  EXPECT_THROW(run_attack(p, w, random, 30.0, resume), std::runtime_error);
}

TEST(Checkpoint, BudgetAndSeedMismatchesAreRejected) {
  const Problem p = test_problem(6);
  const sim::World w(p, 46);
  TempFile f("recon_ckpt_budget.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 2;
  stop.checkpoint_path = f.path;
  PmArest pm(PmArestOptions{.batch_size = 5});
  run_attack(p, w, pm, 30.0, stop);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  AttackRunOptions resume;
  resume.resume = &cp;
  PmArest pm2(PmArestOptions{.batch_size = 5});
  EXPECT_THROW(run_attack(p, w, pm2, 31.0, resume), std::runtime_error);

  const sim::World other_world(p, 999);  // not the checkpointed world
  PmArest pm3(PmArestOptions{.batch_size = 5});
  EXPECT_THROW(run_attack(p, other_world, pm3, 30.0, resume), std::runtime_error);
}

TEST(Checkpoint, FaultConfigurationMismatchIsRejected) {
  const Problem p = test_problem(7);
  const sim::World w(p, 47);
  TempFile f("recon_ckpt_faultcfg.ckpt");
  sim::FaultOptions fo;
  fo.timeout_rate = 0.2;
  sim::FaultModel fm(fo);
  AttackRunOptions stop;
  stop.fault = &fm;
  stop.stop_after_rounds = 2;
  stop.checkpoint_path = f.path;
  PmArest pm(PmArestOptions{.batch_size = 5});
  run_attack(p, w, pm, 30.0, stop);

  // Checkpoint carries fault state, but the resuming run has no fault model.
  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  AttackRunOptions resume;
  resume.resume = &cp;
  PmArest pm2(PmArestOptions{.batch_size = 5});
  EXPECT_THROW(run_attack(p, w, pm2, 30.0, resume), std::runtime_error);
}

TEST(Checkpoint, TruncatedOrCorruptFilesAreRejected) {
  const Problem p = test_problem(8);
  const sim::World w(p, 48);
  TempFile f("recon_ckpt_trunc.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 3;
  stop.checkpoint_path = f.path;
  PmArest pm(PmArestOptions{.batch_size = 5});
  run_attack(p, w, pm, 30.0, stop);

  std::ifstream in(f.path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string good = buf.str();
  ASSERT_FALSE(good.empty());
  {
    std::istringstream ok(good);
    EXPECT_NO_THROW(read_checkpoint(ok));
  }
  // Chop the file at every line boundary: every prefix must be rejected.
  std::size_t pos = 0;
  int prefixes = 0;
  while ((pos = good.find('\n', pos)) != std::string::npos) {
    ++pos;
    if (pos == good.size()) break;
    std::istringstream truncated(good.substr(0, pos));
    EXPECT_THROW(read_checkpoint(truncated), std::runtime_error)
        << "prefix of " << pos << " bytes parsed";
    ++prefixes;
  }
  EXPECT_GT(prefixes, 5);
  // Header corruption.
  std::istringstream bad_header("#recon-checkpoint v9\n" +
                                good.substr(good.find('\n') + 1));
  EXPECT_THROW(read_checkpoint(bad_header), std::runtime_error);
  // Missing file.
  EXPECT_THROW(read_checkpoint_file("/tmp/recon_ckpt_does_not_exist.ckpt"),
               std::runtime_error);
}

}  // namespace
}  // namespace recon::core
