// Tests for the multi-attacker (colluding socialbot fleet) extension.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/attack.h"
#include "core/baselines.h"
#include "core/multi_attacker.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "sim/problem.h"
#include "sim/world.h"

namespace recon::core {
namespace {

using graph::NodeId;

sim::Problem fleet_problem(int seed, double mutual_boost = 0.2) {
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.base_acceptance = 0.3;
  opts.mutual_boost = mutual_boost;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(150, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.9), seed + 1),
      opts);
}

TEST(MultiObservation, PerBotLeverage) {
  const sim::Problem p = fleet_problem(1);
  const sim::World w(p, 5);
  MultiObservation obs(p, 2);
  // Bot 0 friends node 0; only bot 0's q toward 0's neighbors rises.
  const auto nbrs = w.true_neighbors(0);
  ASSERT_FALSE(nbrs.empty());
  const NodeId v = nbrs.front();
  const double q0_before = obs.acceptance_prob(0, v);
  const double q1_before = obs.acceptance_prob(1, v);
  obs.record_accept(0, 0, nbrs);
  EXPECT_GT(obs.acceptance_prob(0, v), q0_before);
  EXPECT_DOUBLE_EQ(obs.acceptance_prob(1, v), q1_before);
  EXPECT_EQ(obs.mutual_friends(0, v), 1u);
  EXPECT_EQ(obs.mutual_friends(1, v), 0u);
  // Shared intelligence: the edge is revealed for the whole fleet.
  EXPECT_TRUE(obs.shared().is_friend(0));
  EXPECT_TRUE(obs.shared().is_fof(v));
}

TEST(MultiObservation, Validation) {
  const sim::Problem p = fleet_problem(1);
  EXPECT_THROW(MultiObservation(p, 0), std::invalid_argument);
}

TEST(MultiAttack, BudgetAndShapeRespected) {
  const sim::Problem p = fleet_problem(2);
  const sim::World w(p, 7);
  MultiAttackOptions opts;
  opts.num_attackers = 3;
  opts.batch_per_attacker = 4;
  const auto result = run_multi_attack(p, w, opts, 36.0);
  EXPECT_LE(result.combined.total_cost(), 36.0 + 1e-9);
  for (const auto& b : result.combined.batches) {
    EXPECT_LE(b.requests.size(), 12u);  // fleet batch = A * k
  }
  const std::size_t total_reqs = std::accumulate(result.requests_per_bot.begin(),
                                                 result.requests_per_bot.end(),
                                                 std::size_t{0});
  EXPECT_EQ(total_reqs, result.combined.total_requests());
  EXPECT_GT(result.combined.total_benefit(), 0.0);
}

TEST(MultiAttack, NoNodeFriendedTwice) {
  const sim::Problem p = fleet_problem(3);
  const sim::World w(p, 9);
  MultiAttackOptions opts;
  opts.num_attackers = 4;
  opts.batch_per_attacker = 3;
  opts.allow_retries = true;
  const auto result = run_multi_attack(p, w, opts, 100.0);
  std::set<NodeId> accepted;
  for (const auto& b : result.combined.batches) {
    for (std::size_t i = 0; i < b.requests.size(); ++i) {
      if (b.accepted[i]) {
        EXPECT_TRUE(accepted.insert(b.requests[i]).second)
            << "node " << b.requests[i] << " friended twice";
      }
    }
  }
}

TEST(MultiAttack, WithinBatchNodesDistinct) {
  const sim::Problem p = fleet_problem(4);
  const sim::World w(p, 11);
  MultiAttackOptions opts;
  opts.num_attackers = 3;
  opts.batch_per_attacker = 5;
  const auto result = run_multi_attack(p, w, opts, 60.0);
  for (const auto& b : result.combined.batches) {
    std::set<NodeId> uniq(b.requests.begin(), b.requests.end());
    EXPECT_EQ(uniq.size(), b.requests.size());
  }
}

TEST(MultiAttack, Deterministic) {
  const sim::Problem p = fleet_problem(5);
  const sim::World w(p, 13);
  MultiAttackOptions opts;
  opts.num_attackers = 2;
  opts.batch_per_attacker = 4;
  const auto a = run_multi_attack(p, w, opts, 40.0);
  const auto b = run_multi_attack(p, w, opts, 40.0);
  ASSERT_EQ(a.combined.batches.size(), b.combined.batches.size());
  EXPECT_DOUBLE_EQ(a.combined.total_benefit(), b.combined.total_benefit());
}

TEST(MultiAttack, MatchesSingleAttackerWhenFleetOfOne) {
  // A fleet of one bot behaves like PM-AReST structurally: same batch sizes,
  // positive benefit; scores coincide so selections should too (identical
  // tie-breaking), except acceptance-randomness streams differ (bot stream
  // encoding), so compare structure not outcomes.
  const sim::Problem p = fleet_problem(6, /*mutual_boost=*/0.0);
  const sim::World w(p, 15);
  MultiAttackOptions opts;
  opts.num_attackers = 1;
  opts.batch_per_attacker = 5;
  const auto multi = run_multi_attack(p, w, opts, 20.0);
  PmArest single(PmArestOptions{.batch_size = 5});
  const auto strace = run_attack(p, w, single, 20.0);
  ASSERT_FALSE(multi.combined.batches.empty());
  // First batch selection happens before any randomness: must be identical.
  EXPECT_EQ(multi.combined.batches.front().requests,
            strace.batches.front().requests);
}

TEST(MultiAttack, MutualBoostMakesFleetConcentrationPayOff) {
  // With a strong mutual-friend boost, a coordinated fleet gains more
  // benefit per request than independent low-leverage requests: check the
  // fleet reaches strictly positive accepts for every bot (sanity) and that
  // the fleet outperforms a random strategy at equal budget.
  const sim::Problem p = fleet_problem(7, 0.25);
  MultiAttackOptions opts;
  opts.num_attackers = 3;
  opts.batch_per_attacker = 5;
  double fleet_benefit = 0.0;
  double random_benefit = 0.0;
  const int runs = 6;
  for (int r = 0; r < runs; ++r) {
    const sim::World w(p, util::derive_seed(99, r));
    fleet_benefit += run_multi_attack(p, w, opts, 45.0).combined.total_benefit();
    // Random baseline: 15-node batches of random candidates.
    RandomStrategy rnd(15, 1000 + static_cast<std::uint64_t>(r));
    random_benefit += run_attack(p, w, rnd, 45.0).total_benefit();
  }
  EXPECT_GT(fleet_benefit, random_benefit * 1.3);
}

TEST(MultiAttack, PerBotTracesPartitionTheFleetTrace) {
  const sim::Problem p = fleet_problem(9);
  const sim::World w(p, 17);
  MultiAttackOptions opts;
  opts.num_attackers = 3;
  opts.batch_per_attacker = 4;
  const auto result = run_multi_attack(p, w, opts, 48.0);
  ASSERT_EQ(result.per_bot.size(), 3u);
  // Rounds align, per-bot requests partition the fleet batch, and per-bot
  // benefit deltas sum to the fleet delta.
  for (std::size_t round = 0; round < result.combined.batches.size(); ++round) {
    std::size_t reqs = 0;
    double delta = 0.0;
    for (const auto& bt : result.per_bot) {
      ASSERT_EQ(bt.batches.size(), result.combined.batches.size());
      reqs += bt.batches[round].requests.size();
      delta += bt.batches[round].delta.total();
      EXPECT_LE(bt.batches[round].requests.size(), 4u);  // per-bot round quota
    }
    EXPECT_EQ(reqs, result.combined.batches[round].requests.size());
    EXPECT_NEAR(delta, result.combined.batches[round].delta.total(), 1e-9);
  }
  double total = 0.0;
  for (const auto& bt : result.per_bot) total += bt.total_benefit();
  EXPECT_NEAR(total, result.combined.total_benefit(), 1e-9);
}

TEST(MultiAttack, Validation) {
  const sim::Problem p = fleet_problem(8);
  const sim::World w(p, 1);
  MultiAttackOptions opts;
  opts.num_attackers = 0;
  EXPECT_THROW(run_multi_attack(p, w, opts, 10.0), std::invalid_argument);
  opts.num_attackers = 2;
  EXPECT_THROW(run_multi_attack(p, w, opts, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace recon::core
