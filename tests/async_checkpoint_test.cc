// Checkpoint/resume tests for the rolling-window (async) runner: v2 record
// round trips, bit-identical resumption at arbitrary event indices (with
// outstanding requests and mid-suspension), and cross-runner rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/async_attack.h"
#include "core/attack.h"
#include "core/checkpoint.h"
#include "core/pm_arest.h"
#include "core/retry_policy.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/problem.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

enum class GraphKind { kBarabasiAlbert, kErdosRenyi };

Problem test_problem(int seed, GraphKind kind = GraphKind::kBarabasiAlbert,
                     NodeId n = 100) {
  sim::ProblemOptions opts;
  opts.num_targets = 20;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  graph::Graph g = kind == GraphKind::kBarabasiAlbert
                       ? graph::barabasi_albert(n, 4, seed)
                       : graph::erdos_renyi_gnm(n, 4 * n, seed);
  return sim::make_problem(
      graph::assign_edge_probs(std::move(g),
                               graph::EdgeProbModel::uniform(0.3, 0.95), seed + 1),
      opts);
}

/// Trace equality with exact double comparison (select_seconds excluded:
/// it is wall clock and the async runner leaves it zero anyway).
void expect_traces_equal(const sim::AttackTrace& a, const sim::AttackTrace& b) {
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].requests, b.batches[i].requests) << "batch " << i;
    EXPECT_EQ(a.batches[i].accepted, b.batches[i].accepted) << "batch " << i;
    EXPECT_EQ(a.batches[i].outcome, b.batches[i].outcome) << "batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].cost, b.batches[i].cost) << "batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].cumulative_cost, b.batches[i].cumulative_cost)
        << "batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].delta.total(), b.batches[i].delta.total());
    EXPECT_DOUBLE_EQ(a.batches[i].cumulative.total(),
                     b.batches[i].cumulative.total());
  }
}

struct TempFile {
  explicit TempFile(const std::string& name) : path("/tmp/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

sim::FaultOptions flaky_fault() {
  sim::FaultOptions fo;
  fo.timeout_rate = 0.15;
  fo.drop_rate = 0.1;
  fo.throttle_rate = 0.1;
  fo.seed = 99;
  return fo;
}

RetryPolicy fixed_retry() {
  RetryPolicy retry;
  retry.backoff = RetryBackoff::kFixed;
  retry.base_delay = 2.0;
  return retry;
}

TEST(AsyncCheckpoint, V2RoundTripPreservesEverything) {
  const Problem p = test_problem(1);
  const sim::World w(p, 77);
  const RetryPolicy retry = fixed_retry();
  sim::FaultModel fault(flaky_fault());
  TempFile f("recon_async_ckpt_roundtrip.ckpt");
  AsyncAttackOptions opts;
  opts.window = 5;
  opts.allow_retries = true;
  opts.fault = &fault;
  opts.retry = &retry;
  opts.stop_after_events = 8;
  opts.checkpoint_path = f.path;
  const auto res = run_async_attack(p, w, opts, 40.0);
  ASSERT_EQ(res.trace.batches.size(), 8u);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  EXPECT_TRUE(cp.has_async);
  EXPECT_EQ(cp.strategy_name, kAsyncCheckpointStrategy);
  EXPECT_EQ(cp.world_seed, 77u);
  EXPECT_DOUBLE_EQ(cp.budget, 40.0);
  EXPECT_EQ(cp.round, 8u);
  EXPECT_TRUE(cp.has_fault);
  EXPECT_EQ(cp.async.window, 5);
  EXPECT_DOUBLE_EQ(cp.async.now, res.makespan_seconds);
  EXPECT_FALSE(cp.async.rng_state.empty());
  EXPECT_LE(cp.async.in_flight.size(), 5u);
  EXPECT_EQ(cp.trace.batches.size(), 8u);

  // Serialize the parsed checkpoint again: the round trip must be lossless.
  std::ostringstream out;
  write_checkpoint(out, cp);
  EXPECT_EQ(out.str().rfind("#recon-checkpoint v2", 0), 0u);
  std::istringstream in(out.str());
  const AttackCheckpoint cp2 = read_checkpoint(in);
  EXPECT_EQ(cp2.node_states, cp.node_states);
  EXPECT_EQ(cp2.edge_states, cp.edge_states);
  EXPECT_EQ(cp2.attempts, cp.attempts);
  EXPECT_EQ(cp2.friends, cp.friends);
  EXPECT_EQ(cp2.retry_after, cp.retry_after);
  EXPECT_EQ(cp2.fault.sends, cp.fault.sends);
  EXPECT_EQ(cp2.fault.window, cp.fault.window);
  EXPECT_TRUE(cp2.has_async);
  EXPECT_EQ(cp2.async.window, cp.async.window);
  EXPECT_DOUBLE_EQ(cp2.async.now, cp.async.now);
  EXPECT_EQ(cp2.async.requests_sent, cp.async.requests_sent);
  EXPECT_EQ(cp2.async.accepts, cp.async.accepts);
  EXPECT_EQ(cp2.async.rng_state, cp.async.rng_state);
  EXPECT_EQ(cp2.async.in_flight, cp.async.in_flight);
  expect_traces_equal(cp2.trace, cp.trace);
}

/// Kills a fault+retry run at several event indices and resumes each one;
/// the resumed result must match the uninterrupted run bit-for-bit (trace,
/// makespan, tallies) — including kill points with outstanding requests.
void check_resume_bit_identical(GraphKind kind, int window) {
  const Problem p = test_problem(kind == GraphKind::kBarabasiAlbert ? 2 : 3, kind);
  const RetryPolicy retry = fixed_retry();
  const sim::FaultOptions fo = flaky_fault();
  AsyncAttackOptions base;
  base.window = window;
  base.allow_retries = true;
  base.retry = &retry;
  base.seed = 0xD1CE;
  const double budget = 35.0;

  const sim::World w(p, 1234);
  sim::FaultModel fault_full(fo);
  AsyncAttackOptions full_opts = base;
  full_opts.fault = &fault_full;
  const auto full = run_async_attack(p, w, full_opts, budget);
  ASSERT_GT(full.trace.batches.size(), 6u);

  bool saw_outstanding = false;
  TempFile f("recon_async_ckpt_resume.ckpt");
  for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{3}, std::uint64_t{6},
                          full.trace.batches.size() - 2}) {
    sim::FaultModel fault_partial(fo);
    AsyncAttackOptions partial = base;
    partial.fault = &fault_partial;
    partial.stop_after_events = k;
    partial.checkpoint_path = f.path;
    run_async_attack(p, w, partial, budget);

    const AttackCheckpoint cp = read_checkpoint_file(f.path);
    EXPECT_EQ(cp.round, k);
    saw_outstanding = saw_outstanding || !cp.async.in_flight.empty();

    const sim::World resumed_world(p, cp.world_seed);
    sim::FaultModel fault_resume(fo);
    AsyncAttackOptions resume = base;
    resume.fault = &fault_resume;
    resume.resume = &cp;
    const auto resumed = run_async_attack(p, resumed_world, resume, budget);
    expect_traces_equal(resumed.trace, full.trace);
    EXPECT_DOUBLE_EQ(resumed.makespan_seconds, full.makespan_seconds)
        << "W=" << window << " k=" << k;
    EXPECT_EQ(resumed.requests_sent, full.requests_sent);
    EXPECT_EQ(resumed.accepts, full.accepts);
  }
  // For W > 1 the sweep must have exercised a checkpoint with a non-empty
  // window, or the in-flight serialization went untested. (W = 1 snapshots
  // always land between a resolution and the next send, so nothing is ever
  // outstanding there.)
  if (window > 1) EXPECT_TRUE(saw_outstanding) << "W=" << window;
}

TEST(AsyncCheckpoint, ResumeBitIdenticalWindowOneBA) {
  check_resume_bit_identical(GraphKind::kBarabasiAlbert, 1);
}

TEST(AsyncCheckpoint, ResumeBitIdenticalWindowFiveBA) {
  check_resume_bit_identical(GraphKind::kBarabasiAlbert, 5);
}

TEST(AsyncCheckpoint, ResumeBitIdenticalWindowOneER) {
  check_resume_bit_identical(GraphKind::kErdosRenyi, 1);
}

TEST(AsyncCheckpoint, ResumeBitIdenticalWindowFiveER) {
  check_resume_bit_identical(GraphKind::kErdosRenyi, 5);
}

TEST(AsyncCheckpoint, ResumeMidSuspensionWithEmptyWindow) {
  // A rate-limit-heavy fault model: the window drains while the account is
  // suspended, so some checkpoint catches the loop mid-lockout with nothing
  // outstanding. Resuming from it must replay the same lockout arithmetic.
  const Problem p = test_problem(4);
  sim::FaultOptions fo;
  fo.suspension.max_requests = 4;
  fo.suspension.window_ticks = 6;
  fo.suspension.lockout_ticks = 10;
  fo.seed = 7;
  AsyncAttackOptions base;
  base.window = 5;
  base.seed = 0xBEEF;
  const double budget = 30.0;

  const sim::World w(p, 555);
  sim::FaultModel fault_full(fo);
  AsyncAttackOptions full_opts = base;
  full_opts.fault = &fault_full;
  const auto full = run_async_attack(p, w, full_opts, budget);

  TempFile f("recon_async_ckpt_suspended.ckpt");
  bool found_suspended_empty = false;
  for (std::uint64_t k = 1; k < full.trace.batches.size(); ++k) {
    sim::FaultModel fault_partial(fo);
    AsyncAttackOptions partial = base;
    partial.fault = &fault_partial;
    partial.stop_after_events = k;
    partial.checkpoint_path = f.path;
    run_async_attack(p, w, partial, budget);

    const AttackCheckpoint cp = read_checkpoint_file(f.path);
    const bool suspended_empty = cp.has_fault &&
                                 cp.fault.tick < cp.fault.suspended_until &&
                                 cp.async.in_flight.empty();
    found_suspended_empty = found_suspended_empty || suspended_empty;
    if (!suspended_empty) continue;

    const sim::World resumed_world(p, cp.world_seed);
    sim::FaultModel fault_resume(fo);
    AsyncAttackOptions resume = base;
    resume.fault = &fault_resume;
    resume.resume = &cp;
    const auto resumed = run_async_attack(p, resumed_world, resume, budget);
    expect_traces_equal(resumed.trace, full.trace);
    EXPECT_DOUBLE_EQ(resumed.makespan_seconds, full.makespan_seconds);
    EXPECT_EQ(resumed.requests_sent, full.requests_sent);
  }
  // The fault parameters above must actually produce the scenario under test.
  EXPECT_TRUE(found_suspended_empty);
}

TEST(AsyncCheckpoint, PeriodicCheckpointsMatchForcedOnes) {
  const Problem p = test_problem(5);
  const sim::World w(p, 31);
  TempFile periodic("recon_async_ckpt_periodic.ckpt");
  AsyncAttackOptions opts;
  opts.window = 4;
  opts.checkpoint_path = periodic.path;
  opts.checkpoint_every_events = 5;
  opts.stop_after_events = 15;
  run_async_attack(p, w, opts, 25.0);
  // 15 is a multiple of 5, so the last periodic write is also the forced one.
  const AttackCheckpoint cp = read_checkpoint_file(periodic.path);
  EXPECT_EQ(cp.round, 15u);
  EXPECT_TRUE(cp.has_async);
}

TEST(AsyncCheckpoint, SyncCheckpointsStayV1) {
  const Problem p = test_problem(6);
  const sim::World w(p, 9);
  PmArest strategy(PmArestOptions{.batch_size = 5});
  TempFile f("recon_async_ckpt_sync_v1.ckpt");
  AttackRunOptions ro;
  ro.stop_after_rounds = 3;
  ro.checkpoint_path = f.path;
  run_attack(p, w, strategy, 30.0, ro);
  std::ifstream in(f.path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "#recon-checkpoint v1");
  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  EXPECT_FALSE(cp.has_async);
  EXPECT_EQ(cp.round, 3u);
}

TEST(AsyncCheckpoint, CrossRunnerResumeRejected) {
  const Problem p = test_problem(7);
  const sim::World w(p, 13);
  const double budget = 25.0;

  // Async checkpoint -> synchronous runner must refuse.
  TempFile async_f("recon_async_ckpt_cross_a.ckpt");
  AsyncAttackOptions ao;
  ao.window = 3;
  ao.stop_after_events = 4;
  ao.checkpoint_path = async_f.path;
  run_async_attack(p, w, ao, budget);
  const AttackCheckpoint async_cp = read_checkpoint_file(async_f.path);
  PmArest strategy(PmArestOptions{.batch_size = 5});
  AttackRunOptions ro;
  ro.resume = &async_cp;
  EXPECT_THROW(run_attack(p, w, strategy, budget, ro), std::runtime_error);

  // Sync checkpoint -> rolling-window runner must refuse.
  TempFile sync_f("recon_async_ckpt_cross_s.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 2;
  stop.checkpoint_path = sync_f.path;
  PmArest first_half(PmArestOptions{.batch_size = 5});
  run_attack(p, w, first_half, budget, stop);
  const AttackCheckpoint sync_cp = read_checkpoint_file(sync_f.path);
  AsyncAttackOptions resume;
  resume.window = 3;
  resume.resume = &sync_cp;
  EXPECT_THROW(run_async_attack(p, w, resume, budget), std::runtime_error);
}

TEST(AsyncCheckpoint, ResumeMismatchesRejected) {
  const Problem p = test_problem(8);
  const sim::World w(p, 21);
  TempFile f("recon_async_ckpt_mismatch.ckpt");
  sim::FaultModel fault(flaky_fault());
  AsyncAttackOptions opts;
  opts.window = 4;
  opts.fault = &fault;
  opts.stop_after_events = 3;
  opts.checkpoint_path = f.path;
  run_async_attack(p, w, opts, 25.0);
  const AttackCheckpoint cp = read_checkpoint_file(f.path);

  sim::FaultModel fresh(flaky_fault());
  AsyncAttackOptions resume;
  resume.window = 4;
  resume.fault = &fresh;
  resume.resume = &cp;
  // Budget mismatch.
  EXPECT_THROW(run_async_attack(p, w, resume, 26.0), std::runtime_error);
  // World-seed mismatch.
  const sim::World other(p, 22);
  EXPECT_THROW(run_async_attack(p, other, resume, 25.0), std::runtime_error);
  // Window mismatch.
  AsyncAttackOptions narrow = resume;
  narrow.window = 2;
  EXPECT_THROW(run_async_attack(p, w, narrow, 25.0), std::runtime_error);
  // Fault-configuration mismatch (checkpointed with faults, resumed without).
  AsyncAttackOptions no_fault = resume;
  no_fault.fault = nullptr;
  EXPECT_THROW(run_async_attack(p, w, no_fault, 25.0), std::runtime_error);
  // checkpoint_every_events without a path is rejected up front.
  AsyncAttackOptions bad;
  bad.checkpoint_every_events = 2;
  EXPECT_THROW(run_async_attack(p, w, bad, 25.0), std::invalid_argument);
}

TEST(AsyncCheckpoint, TruncatedV2Rejected) {
  const Problem p = test_problem(9);
  const sim::World w(p, 3);
  TempFile f("recon_async_ckpt_trunc.ckpt");
  sim::FaultModel fault(flaky_fault());
  AsyncAttackOptions opts;
  opts.window = 3;
  opts.fault = &fault;
  opts.stop_after_events = 5;
  opts.checkpoint_path = f.path;
  run_async_attack(p, w, opts, 20.0);
  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  std::ostringstream out;
  write_checkpoint(out, cp);
  const std::string doc = out.str();

  // Cutting the document at any line boundary short of the full text must be
  // detected (either by the checkpoint reader or the embedded trace reader).
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    if (doc[i] == '\n' && i + 1 < doc.size()) cuts.push_back(i + 1);
  }
  ASSERT_GT(cuts.size(), 10u);
  for (const std::size_t cut : cuts) {
    std::istringstream in(doc.substr(0, cut));
    EXPECT_THROW(read_checkpoint(in), std::runtime_error) << "cut at " << cut;
  }
}

TEST(AsyncCheckpoint, MalformedV2SectionsRejected) {
  const Problem p = test_problem(10);
  const sim::World w(p, 5);
  TempFile f("recon_async_ckpt_malformed.ckpt");
  AsyncAttackOptions opts;
  opts.window = 3;
  opts.stop_after_events = 4;
  opts.checkpoint_path = f.path;
  run_async_attack(p, w, opts, 20.0);
  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  std::ostringstream out;
  write_checkpoint(out, cp);
  const std::string doc = out.str();

  const auto expect_reject = [](std::string broken) {
    std::istringstream in(broken);
    EXPECT_THROW(read_checkpoint(in), std::runtime_error);
  };
  // v1 readers never accepted these keywords, so a v1-headed document with a
  // v2 body must fail as "unknown section".
  std::string v1_body = doc;
  v1_body.replace(0, std::string("#recon-checkpoint v2").size(),
                  "#recon-checkpoint v1");
  expect_reject(v1_body);
  // A v2 header without the async sections is incomplete.
  std::string no_async = doc;
  const std::size_t async_pos = no_async.find("\nasync ");
  const std::size_t strategy_pos = no_async.find("\nstrategy ");
  ASSERT_NE(async_pos, std::string::npos);
  ASSERT_NE(strategy_pos, std::string::npos);
  no_async.erase(async_pos, strategy_pos - async_pos);
  expect_reject(no_async);
  // Corrupted rng / inflight lines.
  std::string bad_rng = doc;
  bad_rng.replace(bad_rng.find("\nrng "), 5, "\nrng x");
  expect_reject(bad_rng);
  std::string bad_window = doc;
  const std::size_t aw = bad_window.find("\nasync window=");
  ASSERT_NE(aw, std::string::npos);
  const std::size_t val = aw + std::string("\nasync window=").size();
  bad_window.replace(val, bad_window.find(' ', val) - val, "0");
  expect_reject(bad_window);
}

}  // namespace
}  // namespace recon::core
