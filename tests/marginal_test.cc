// Validates the closed-form expected marginal gain Δf(u | ω) (Lemma 1)
// against brute-force Monte-Carlo estimates, and its interaction with
// partial observations.
#include <gtest/gtest.h>

#include "core/marginal.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "sim/world.h"
#include "solver/saa.h"
#include "util/rng.h"

namespace recon::core {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using sim::Observation;
using sim::Problem;

Problem random_problem(int seed, graph::NodeId n = 40, graph::EdgeId m = 90) {
  sim::ProblemOptions opts;
  opts.num_targets = 12;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, m, seed),
                               graph::EdgeProbModel::uniform(0.15, 0.95), seed + 1),
      opts);
}

TEST(Marginal, HandComputedStar) {
  // Center 0, leaves 1..3; p(0,v) = 0.5, q = 0.4, all targets.
  GraphBuilder b(4);
  for (NodeId v = 1; v < 4; ++v) b.add_edge(0, v, 0.5);
  Problem p;
  p.graph = b.build();
  p.targets = {0, 1, 2, 3};
  p.is_target.assign(4, 1);
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(0.4);
  p.validate();

  Observation obs(p);
  // M = 1.5; Bi per edge = 4 / 1.5. Δf(0) = 0.4 * (1 + 3*0.5*0.5 +
  // 3*0.5*(4/1.5)).
  const double expected = 0.4 * (1.0 + 0.75 + 3 * 0.5 * (4.0 / 1.5));
  EXPECT_NEAR(marginal_gain(obs, 0, MarginalPolicy::kWeighted), expected, 1e-12);
  // Leaf: Δf(1) = 0.4 * (1 + 0.5*0.5 + 0.5*(4/1.5)).
  const double leaf = 0.4 * (1.0 + 0.25 + 0.5 * (4.0 / 1.5));
  EXPECT_NEAR(marginal_gain(obs, 1, MarginalPolicy::kWeighted), leaf, 1e-12);
}

TEST(Marginal, PaperLiteralDropsEdgeWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 0.5);
  Problem p;
  p.graph = b.build();
  p.targets = {0, 1};
  p.is_target.assign(2, 1);
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(1.0);
  Observation obs(p);
  // M = 0.5, Bi = 4/0.5 = 8.
  const double weighted = marginal_gain(obs, 0, MarginalPolicy::kWeighted);
  const double literal = marginal_gain(obs, 0, MarginalPolicy::kPaperLiteral);
  EXPECT_NEAR(weighted, 1.0 + 0.5 * 0.5 + 0.5 * 8.0, 1e-12);
  EXPECT_NEAR(literal, 1.0 + 0.5 * 0.5 + 8.0, 1e-12);
  EXPECT_GT(literal, weighted);
}

// The weighted closed form must equal the Monte-Carlo expectation of the
// actual benefit delta of requesting u (the defining property of Δf). The
// SAA scenario evaluator provides an independent implementation of that
// benefit delta.
class MarginalVsMonteCarlo : public ::testing::TestWithParam<int> {};

TEST_P(MarginalVsMonteCarlo, ClosedFormMatchesSampling) {
  const int seed = GetParam();
  const Problem p = random_problem(seed);
  Observation obs(p);

  // Advance to a nontrivial partial realization.
  const sim::World w(p, static_cast<std::uint64_t>(seed) + 1000);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int step = 0; step < 8; ++step) {
    const auto u = static_cast<NodeId>(rng.below(p.graph.num_nodes()));
    if (obs.is_friend(u)) continue;
    if (w.attempt_accept(u, obs.attempts(u), obs.acceptance_prob(u))) {
      obs.record_accept(u, w.true_neighbors(u));
    } else {
      obs.record_reject(u);
    }
  }

  const auto scenarios =
      solver::sample_scenarios(obs, 60000, static_cast<std::uint64_t>(seed) * 17 + 3);
  for (NodeId u = 0; u < p.graph.num_nodes(); u += 7) {
    if (obs.is_friend(u)) continue;
    const double closed = marginal_gain(obs, u, MarginalPolicy::kWeighted);
    const double sampled = solver::saa_objective(obs, scenarios, {u});
    // Benefit magnitudes here are O(10); 60k samples give stderr well under
    // the 2.5% relative tolerance used.
    EXPECT_NEAR(sampled, closed, std::max(0.05, closed * 0.025))
        << "node " << u << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarginalVsMonteCarlo, ::testing::Values(1, 2, 3));

TEST(Marginal, ZeroWhenNothingToGain) {
  // Non-target node with no neighbors gains nothing.
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  Problem p;
  p.graph = b.build();
  p.targets = {0};
  p.is_target = {1, 0, 0};
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(0.5);
  Observation obs(p);
  // Node 2 is isolated and not a target: zero gain... except Bi for
  // its (nonexistent) edges — none. Bf(2) = 0.
  EXPECT_DOUBLE_EQ(marginal_gain(obs, 2, MarginalPolicy::kWeighted), 0.0);
}

TEST(Marginal, FofUpgradeReducesGain) {
  const Problem p = random_problem(5);
  Observation obs(p);
  // Find a target with a target neighbor; friending the neighbor makes the
  // target a FoF, which must reduce (not increase) its remaining marginal.
  const sim::World w(p, 99);
  NodeId target = graph::kInvalidNode;
  NodeId anchor = graph::kInvalidNode;
  for (NodeId t : p.targets) {
    for (NodeId v : w.true_neighbors(t)) {
      target = t;
      anchor = v;
      break;
    }
    if (target != graph::kInvalidNode) break;
  }
  ASSERT_NE(target, graph::kInvalidNode);
  const double before = marginal_gain(obs, target, MarginalPolicy::kWeighted);
  obs.record_accept(anchor, w.true_neighbors(anchor));
  ASSERT_TRUE(obs.is_fof(target));
  const double after = marginal_gain(obs, target, MarginalPolicy::kWeighted);
  EXPECT_LT(after, before);
}

TEST(Marginal, AdaptiveSubmodularityProperty) {
  // Δf(u | ω) >= Δf(u | ω') whenever ω ⊆ ω' (Definition 3), checked along a
  // random observation chain for nodes staying unrequested. With constant
  // acceptance (no mutual boost), extending the observation never increases
  // a third party's marginal gain.
  for (int seed = 1; seed <= 6; ++seed) {
    const Problem p = random_problem(seed);
    const sim::World w(p, static_cast<std::uint64_t>(seed) * 7 + 5);
    Observation obs(p);
    std::vector<double> last(p.graph.num_nodes(), 0.0);
    for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
      last[u] = marginal_gain(obs, u, MarginalPolicy::kWeighted);
    }
    util::Rng rng(static_cast<std::uint64_t>(seed));
    for (int step = 0; step < 12; ++step) {
      const auto r = static_cast<NodeId>(rng.below(p.graph.num_nodes()));
      if (obs.is_friend(r)) continue;
      if (w.attempt_accept(r, obs.attempts(r), obs.acceptance_prob(r))) {
        obs.record_accept(r, w.true_neighbors(r));
      } else {
        obs.record_reject(r);
      }
      for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
        if (obs.is_friend(u) || obs.node_state(u) != sim::NodeState::kUnknown) continue;
        const double now = marginal_gain(obs, u, MarginalPolicy::kWeighted);
        ASSERT_LE(now, last[u] + 1e-9) << "seed " << seed << " node " << u;
        last[u] = now;
      }
    }
  }
}

TEST(Marginal, MutualBoostCanRaiseMarginals) {
  // With the mutual-friend boost, observing an accept can *increase* a
  // neighbor's marginal gain (q rises) — the dynamic that makes retrying
  // rejected nodes worthwhile (Sec. IV-C) and the reason the cross-batch
  // cache must dirty the accepted node's neighborhood.
  sim::ProblemOptions opts;
  opts.num_targets = 10;
  opts.base_acceptance = 0.3;
  opts.mutual_boost = 0.4;
  opts.seed = 4;
  const Problem p = sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(50, 3, 4),
                               graph::EdgeProbModel::uniform(0.5, 0.9), 5),
      opts);
  const sim::World w(p, 9);
  Observation obs(p);
  // Find an accepted node with an unrequested true neighbor.
  bool found_increase = false;
  for (NodeId u = 0; u < p.graph.num_nodes() && !found_increase; ++u) {
    const auto nbrs = w.true_neighbors(u);
    if (nbrs.empty()) continue;
    Observation trial(p);
    std::vector<double> before(p.graph.num_nodes());
    for (NodeId v : nbrs) before[v] = marginal_gain(trial, v, MarginalPolicy::kWeighted);
    trial.record_accept(u, nbrs);
    for (NodeId v : nbrs) {
      if (trial.is_friend(v)) continue;
      const double after = marginal_gain(trial, v, MarginalPolicy::kWeighted);
      if (after > before[v] + 1e-9) found_increase = true;
    }
  }
  EXPECT_TRUE(found_increase);
}

}  // namespace
}  // namespace recon::core
