// Tests for attack-trace serialization: roundtrips of real traces and
// malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "sim/problem.h"
#include "sim/trace_io.h"

namespace recon::sim {
namespace {

std::vector<AttackTrace> real_traces() {
  ProblemOptions opts;
  opts.num_targets = 15;
  opts.base_acceptance = 0.4;
  opts.seed = 3;
  const Problem p = make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(80, 4, 3),
                               graph::EdgeProbModel::uniform(0.3, 0.9), 4),
      opts);
  const auto mc = core::run_monte_carlo(
      p,
      [](int) {
        return std::make_unique<core::PmArest>(
            core::PmArestOptions{.batch_size = 6, .allow_retries = true});
      },
      3, 40.0, 11);
  return mc.traces;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto traces = real_traces();
  std::stringstream ss;
  write_traces(ss, traces);
  const auto loaded = read_traces(ss);
  ASSERT_EQ(loaded.size(), traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    ASSERT_EQ(loaded[t].batches.size(), traces[t].batches.size());
    for (std::size_t b = 0; b < traces[t].batches.size(); ++b) {
      const auto& orig = traces[t].batches[b];
      const auto& got = loaded[t].batches[b];
      EXPECT_EQ(got.requests, orig.requests);
      EXPECT_EQ(got.accepted, orig.accepted);
      EXPECT_DOUBLE_EQ(got.select_seconds, orig.select_seconds);
      EXPECT_DOUBLE_EQ(got.cost, orig.cost);
      EXPECT_DOUBLE_EQ(got.delta.friends, orig.delta.friends);
      EXPECT_DOUBLE_EQ(got.delta.fofs, orig.delta.fofs);
      EXPECT_DOUBLE_EQ(got.delta.edges, orig.delta.edges);
      // Cumulative fields are recomputed; they must match to FP exactness of
      // summation order (identical order -> identical values).
      EXPECT_DOUBLE_EQ(got.cumulative_cost, orig.cumulative_cost);
      EXPECT_NEAR(got.cumulative.total(), orig.cumulative.total(), 1e-9);
    }
    EXPECT_NEAR(loaded[t].total_benefit(), traces[t].total_benefit(), 1e-9);
  }
}

TEST(TraceIo, EmptySetRoundTrips) {
  std::stringstream ss;
  write_traces(ss, {});
  EXPECT_TRUE(read_traces(ss).empty());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_traces(ss, {AttackTrace{}});
  const auto loaded = read_traces(ss);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].batches.empty());
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("#something-else v9\n");
  EXPECT_THROW(read_traces(ss), std::runtime_error);
}

TEST(TraceIo, RejectsBatchBeforeTrace) {
  std::stringstream ss("#recon-trace v1\nbatch sel=0 cost=1 reqs=1:1 df=0 dx=0 de=0\n");
  EXPECT_THROW(read_traces(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedFields) {
  std::stringstream ss1("#recon-trace v1\ntrace 0\nbatch sel=x cost=1 reqs=1:1 df=0 dx=0 de=0\n");
  EXPECT_THROW(read_traces(ss1), std::runtime_error);
  std::stringstream ss2("#recon-trace v1\ntrace 0\nbatch sel=0 cost=1 reqs=1-1 df=0 dx=0 de=0\n");
  EXPECT_THROW(read_traces(ss2), std::runtime_error);
  std::stringstream ss3("#recon-trace v1\ntrace 0\nwhatever\n");
  EXPECT_THROW(read_traces(ss3), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto traces = real_traces();
  const std::string path = "/tmp/recon_trace_io_test.txt";
  write_traces_file(path, traces);
  const auto loaded = read_traces_file(path);
  EXPECT_EQ(loaded.size(), traces.size());
  EXPECT_THROW(read_traces_file("/nonexistent/recon.txt"), std::runtime_error);
}

TEST(TraceIo, MetricsSurviveRoundTrip) {
  // RRS / RT-RRS computed on loaded traces match the originals.
  const auto traces = real_traces();
  std::stringstream ss;
  write_traces(ss, traces);
  const auto loaded = read_traces(ss);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    EXPECT_EQ(loaded[t].requests_to_reach(5.0), traces[t].requests_to_reach(5.0));
    EXPECT_NEAR(loaded[t].total_select_seconds(), traces[t].total_select_seconds(),
                1e-12);
  }
}

}  // namespace
}  // namespace recon::sim
