// Tests for link-prediction scores and logistic calibration.
#include <gtest/gtest.h>

#include <set>

#include "graph/builder.h"
#include "graph/generators.h"
#include "linkpred/calibration.h"
#include "linkpred/scores.h"

namespace recon::linkpred {
namespace {

using graph::Graph;
using graph::GraphBuilder;

Graph shared_neighbors_graph() {
  // 0 and 1 share neighbors {2, 3}; 4 hangs off 3.
  GraphBuilder b(5);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(3, 4);
  return b.build();
}

TEST(Scores, CommonNeighbors) {
  const Graph g = shared_neighbors_graph();
  EXPECT_DOUBLE_EQ(pair_score(g, 0, 1, ScoreKind::kCommonNeighbors), 2.0);
  EXPECT_DOUBLE_EQ(pair_score(g, 0, 4, ScoreKind::kCommonNeighbors), 1.0);
  // N(2) = {0,1} and N(3) = {0,1,4} share {0,1}; N(2) and N(4) = {3} share
  // nothing.
  EXPECT_DOUBLE_EQ(pair_score(g, 2, 3, ScoreKind::kCommonNeighbors), 2.0);
  EXPECT_DOUBLE_EQ(pair_score(g, 2, 4, ScoreKind::kCommonNeighbors), 0.0);
}

TEST(Scores, Jaccard) {
  const Graph g = shared_neighbors_graph();
  // N(0) = {2,3}, N(1) = {2,3}: J = 1.
  EXPECT_DOUBLE_EQ(pair_score(g, 0, 1, ScoreKind::kJaccard), 1.0);
  // N(0) = {2,3}, N(4) = {3}: inter 1, union 2.
  EXPECT_DOUBLE_EQ(pair_score(g, 0, 4, ScoreKind::kJaccard), 0.5);
}

TEST(Scores, JaccardNoNeighborsIsZero) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(pair_score(g, 0, 2, ScoreKind::kJaccard), 0.0);
}

TEST(Scores, AdamicAdarWeighsLowDegreeMore) {
  // 0-1 share hub h (high degree) ; 2-3 share leaf l (degree 2).
  GraphBuilder b(10);
  // hub h=4 connected to 0,1,5,6,7,8
  for (graph::NodeId v : {0u, 1u, 5u, 6u, 7u, 8u}) b.add_edge(4, v);
  // leaf l=9 connected to 2,3
  b.add_edge(9, 2);
  b.add_edge(9, 3);
  const Graph g = b.build();
  EXPECT_GT(pair_score(g, 2, 3, ScoreKind::kAdamicAdar),
            pair_score(g, 0, 1, ScoreKind::kAdamicAdar));
  EXPECT_GT(pair_score(g, 2, 3, ScoreKind::kResourceAllocation),
            pair_score(g, 0, 1, ScoreKind::kResourceAllocation));
}

TEST(Scores, RejectsSamePair) {
  const Graph g = shared_neighbors_graph();
  EXPECT_THROW(pair_score(g, 1, 1, ScoreKind::kJaccard), std::invalid_argument);
}

TEST(Scores, TwoHopCandidates) {
  const Graph g = shared_neighbors_graph();
  const auto cands = two_hop_candidates(g, 0, ScoreKind::kCommonNeighbors);
  // From 0: distance-2 non-neighbors are 1 (via 2,3) and 4 (via 3).
  ASSERT_EQ(cands.size(), 2u);
  for (const auto& sp : cands) {
    EXPECT_TRUE((sp.u == 0 && (sp.v == 1 || sp.v == 4)));
    EXPECT_GT(sp.score, 0.0);
  }
}

TEST(Scores, AllTwoHopEmitsEachPairOnce) {
  const Graph g = shared_neighbors_graph();
  const auto all = all_two_hop_candidates(g, ScoreKind::kCommonNeighbors);
  std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
  for (const auto& sp : all) {
    EXPECT_LT(sp.u, sp.v);
    EXPECT_TRUE(seen.emplace(sp.u, sp.v).second) << sp.u << "," << sp.v;
    EXPECT_FALSE(g.has_edge(sp.u, sp.v));
  }
}

TEST(Logistic, PredictsSigmoid) {
  LogisticModel m{0.0, 1.0};
  EXPECT_NEAR(m.predict(0.0), 0.5, 1e-12);
  EXPECT_GT(m.predict(3.0), 0.9);
  EXPECT_LT(m.predict(-3.0), 0.1);
}

TEST(Logistic, FitsSeparableData) {
  std::vector<LabeledScore> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({static_cast<double>(i % 5), false});       // scores 0..4
    data.push_back({5.0 + static_cast<double>(i % 5), true});  // scores 5..9
  }
  const LogisticModel m = fit_logistic(data);
  EXPECT_LT(m.predict(1.0), 0.2);
  EXPECT_GT(m.predict(8.0), 0.8);
  EXPECT_GT(m.w1, 0.0);
}

TEST(Logistic, EmptyDataThrows) {
  EXPECT_THROW(fit_logistic({}), std::invalid_argument);
}

TEST(Calibration, ProducesProbabilitiesInRange) {
  const Graph base = graph::watts_strogatz(200, 4, 0.1, 3);
  const Graph g = calibrate_edge_probs(base, ScoreKind::kJaccard, 5);
  ASSERT_EQ(g.num_edges(), base.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(g.edge_prob(e), 0.0);
    EXPECT_LE(g.edge_prob(e), 1.0);
  }
}

TEST(Calibration, EdgesScoreHigherThanNonEdgesOnAverage) {
  const Graph base = graph::watts_strogatz(200, 4, 0.1, 3);
  const auto data = make_calibration_set(base, ScoreKind::kJaccard, 1.0, 7);
  double pos = 0.0, neg = 0.0;
  std::size_t np = 0, nn = 0;
  for (const auto& d : data) {
    if (d.exists) {
      pos += d.score;
      ++np;
    } else {
      neg += d.score;
      ++nn;
    }
  }
  ASSERT_GT(np, 0u);
  ASSERT_GT(nn, 0u);
  EXPECT_GT(pos / np, neg / nn);
}

TEST(RocAuc, HandComputedValues) {
  // Perfect separation: AUC 1; inverted: 0; chance-like interleave: 0.5.
  EXPECT_DOUBLE_EQ(roc_auc({{1, false}, {2, false}, {3, true}, {4, true}}), 1.0);
  EXPECT_DOUBLE_EQ(roc_auc({{3, false}, {4, false}, {1, true}, {2, true}}), 0.0);
  // Interleaved pos/neg/pos/neg: only the (3 > 2) pair of 4 is ordered
  // correctly -> 0.25.
  EXPECT_DOUBLE_EQ(roc_auc({{1, true}, {2, false}, {3, true}, {4, false}}), 0.25);
  // All ties: 0.5 by the tie convention.
  EXPECT_DOUBLE_EQ(roc_auc({{1, true}, {1, false}}), 0.5);
  EXPECT_THROW(roc_auc({{1, true}}), std::invalid_argument);
}

TEST(RocAuc, HoldoutEvaluationBeatsChanceOnClusteredGraphs) {
  // On a high-clustering graph, neighborhood scores predict held-out edges
  // far better than chance; on an ER graph they barely beat chance.
  const Graph ws = graph::watts_strogatz(400, 5, 0.05, 9);
  const double auc_ws = holdout_auc(ws, ScoreKind::kAdamicAdar, 0.1, 11);
  EXPECT_GT(auc_ws, 0.75);
  const Graph er = graph::erdos_renyi_gnm(400, 2000, 9);
  const double auc_er = holdout_auc(er, ScoreKind::kAdamicAdar, 0.1, 11);
  EXPECT_LT(auc_er, auc_ws - 0.1);
  EXPECT_THROW(holdout_auc(ws, ScoreKind::kJaccard, 0.0, 1), std::invalid_argument);
}

TEST(RocAuc, ScoreKindsComparableOnSameHoldout) {
  const Graph g = graph::watts_strogatz(300, 5, 0.1, 3);
  for (auto kind : {ScoreKind::kCommonNeighbors, ScoreKind::kJaccard,
                    ScoreKind::kAdamicAdar, ScoreKind::kResourceAllocation}) {
    const double auc = holdout_auc(g, kind, 0.1, 21);
    EXPECT_GT(auc, 0.6) << static_cast<int>(kind);
    EXPECT_LE(auc, 1.0);
  }
}

}  // namespace
}  // namespace recon::linkpred
