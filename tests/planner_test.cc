// Runtime-adaptive execution planner: determinism contract, checkpoint
// round-trips, forced-tier parity with the legacy flag-driven dispatch, and
// the per-instance shard-calibration regression (no process-global leakage
// between same-process campaigns).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/attack.h"
#include "core/checkpoint.h"
#include "core/planner.h"
#include "core/pm_arest.h"
#include "core/retry_policy.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/problem.h"
#include "solver/fallback.h"
#include "solver/strategy_mip.h"
#include "util/thread_pool.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

Problem ba_problem(int seed, NodeId n = 100) {
  sim::ProblemOptions opts;
  opts.num_targets = 20;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.95),
                               seed + 1),
      opts);
}

Problem er_problem(int seed, NodeId n = 80, graph::EdgeId m = 320) {
  sim::ProblemOptions opts;
  opts.num_targets = 16;
  opts.base_acceptance = 0.5;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, m, seed),
                               graph::EdgeProbModel::uniform(0.2, 0.9),
                               seed + 1),
      opts);
}

/// Trace equality modulo select_seconds (wall clock, never reproducible).
void expect_traces_equal(const sim::AttackTrace& a, const sim::AttackTrace& b,
                         const std::string& label) {
  ASSERT_EQ(a.batches.size(), b.batches.size()) << label;
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].requests, b.batches[i].requests)
        << label << " batch " << i;
    EXPECT_EQ(a.batches[i].accepted, b.batches[i].accepted)
        << label << " batch " << i;
    EXPECT_EQ(a.batches[i].outcome, b.batches[i].outcome)
        << label << " batch " << i;
    EXPECT_DOUBLE_EQ(a.batches[i].cumulative.total(),
                     b.batches[i].cumulative.total())
        << label << " batch " << i;
  }
}

/// The planner's decision sequence, reduced to its deterministic parts
/// (strategy + work model predictions; predicted_seconds is clock-calibrated
/// and deliberately excluded — it never steers choices unless a deadline
/// gate is configured).
struct PlanRecord {
  PlanStrategy strategy;
  double estimated_work;
  double predicted_work;
  bool operator==(const PlanRecord& o) const {
    return strategy == o.strategy && estimated_work == o.estimated_work &&
           predicted_work == o.predicted_work;
  }
};

std::vector<PlanRecord> plan_records(const ExecutionPlanner& p) {
  std::vector<PlanRecord> out;
  out.reserve(p.decision_log().size());
  for (const PlanDecision& d : p.decision_log()) {
    out.push_back({d.strategy, d.estimated_work, d.predicted_work});
  }
  return out;
}

PlannerOptions auto_planner() {
  PlannerOptions po;
  po.mode = PlannerMode::kAuto;
  return po;
}

PlannerOptions fixed_planner(PlanStrategy s) {
  PlannerOptions po;
  po.mode = PlannerMode::kFixed;
  po.fixed_strategy = s;
  return po;
}

struct TempFile {
  explicit TempFile(const std::string& name) : path("/tmp/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---------------------------------------------------------------------------
// Token parsing and basic planner mechanics.

TEST(PlanStrategyTokens, NamesRoundTripAndGreedyAliases) {
  for (int i = 0; i < kNumPlanStrategies; ++i) {
    const auto s = static_cast<PlanStrategy>(i);
    PlanStrategy parsed{};
    ASSERT_TRUE(parse_plan_strategy(plan_strategy_name(s), &parsed))
        << plan_strategy_name(s);
    EXPECT_EQ(parsed, s);
  }
  PlanStrategy parsed{};
  ASSERT_TRUE(parse_plan_strategy("greedy", &parsed));
  EXPECT_EQ(parsed, PlanStrategy::kCollapsedUncached);
  EXPECT_FALSE(parse_plan_strategy("turbo", &parsed));
  EXPECT_FALSE(parse_plan_strategy("", &parsed));
}

TEST(ExecutionPlannerUnit, PlanIsAPureFunctionOfStateAndFeatures) {
  ExecutionPlanner a(auto_planner());
  ExecutionPlanner b(auto_planner());
  PlanFeatures f;
  f.batch_size = 4;
  f.frontier_size = 50;
  f.mean_degree = 6.0;
  f.max_degree = 20.0;
  f.scenario_count = 200;
  f.deadline_seconds = 0.1;
  for (int round = 0; round < 20; ++round) {
    f.frontier_size = 50 + static_cast<std::size_t>(round);
    const PlanDecision da = a.plan(f);
    const PlanDecision db = b.plan(f);
    EXPECT_EQ(da.strategy, db.strategy) << "round " << round;
    EXPECT_EQ(da.predicted_work, db.predicted_work) << "round " << round;
    // Identical deterministic feedback, different wall-clock nanos: the
    // strategy choices must stay in lockstep regardless.
    a.observe(da, da.estimated_work * 0.5, 1000 + round, false);
    b.observe(db, db.estimated_work * 0.5, 999000 - round, false);
  }
  EXPECT_EQ(plan_records(a), plan_records(b));
}

TEST(ExecutionPlannerUnit, DeadlineOverrunDemotesTierThenProbesBack) {
  PlannerOptions po = auto_planner();
  po.calibrate_time = false;  // freeze ns/unit so the gate is state-pure
  ExecutionPlanner p(po);
  PlanFeatures f;
  f.batch_size = 2;
  f.frontier_size = 10;
  f.mean_degree = 3.0;
  f.scenario_count = 50;
  f.deadline_seconds = 1e9;  // everything "fits"; only demotion gates tiers
  ASSERT_EQ(p.plan(f).strategy, PlanStrategy::kSaaExact);
  // The exact tier blows its deadline: barred, saa-greedy takes over.
  p.observe(p.plan(f), 100.0, 50, /*overran_deadline=*/true);
  EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaGreedy);
  // kTierProbeInterval clean batches later the planner probes exact again.
  for (std::uint64_t i = 0; i < ExecutionPlanner::kTierProbeInterval; ++i) {
    EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaGreedy) << i;
    p.observe(p.plan(f), 100.0, 50, false);
  }
  EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaExact);
}

TEST(ExecutionPlannerUnit, NearExhaustedBudgetBarsTheExactTier) {
  PlannerOptions po;
  po.mode = PlannerMode::kAuto;
  // SAA tiers only — the MIP host's admissible set.
  po.admissible = {false, false, false, true, true};
  ExecutionPlanner p(po);
  PlanFeatures f;
  f.batch_size = 4;
  f.frontier_size = 50;
  f.mean_degree = 6.0;
  f.max_degree = 12.0;
  f.scenario_count = 200;

  f.remaining_budget = 100.0;  // ample: quality-first exact tier
  EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaExact);
  f.remaining_budget = 7.0;  // < 2k = 8: the gate demotes deterministically
  EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaGreedy);
  f.remaining_budget = 8.0;  // boundary: >= 2k keeps exact admissible
  EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaExact);
  f.remaining_budget = 0.0;  // unknown/unlimited: no gate
  EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaExact);

  // The gate is budget-driven, not deadline-driven: it applies identically
  // with a deadline configured.
  f.deadline_seconds = 100.0;
  f.remaining_budget = 7.0;
  EXPECT_EQ(p.plan(f).strategy, PlanStrategy::kSaaGreedy);
}

TEST(ExecutionPlannerUnit, SaveRestoreIsBitExact) {
  ExecutionPlanner p(auto_planner());
  PlanFeatures f;
  f.batch_size = 3;
  f.frontier_size = 33;
  f.mean_degree = 4.7;
  f.scenario_count = 100;
  for (int i = 0; i < 7; ++i) {
    const PlanDecision d = p.plan(f);
    // Irrational-ish ratios exercise the full mantissa.
    p.observe(d, d.estimated_work / 3.0, 12345 + i, i == 2);
  }
  const std::string blob = p.save_state();
  ExecutionPlanner q(auto_planner());
  q.restore_state(blob);
  EXPECT_EQ(q.save_state(), blob);
  // The restored planner must plan exactly like the original.
  for (int i = 0; i < 5; ++i) {
    f.frontier_size = 20 + static_cast<std::size_t>(3 * i);
    const PlanDecision dp = p.plan(f);
    const PlanDecision dq = q.plan(f);
    EXPECT_EQ(dp.strategy, dq.strategy);
    EXPECT_EQ(dp.predicted_work, dq.predicted_work);
  }
}

TEST(ExecutionPlannerUnit, MalformedStateBlobsAreRejected) {
  ExecutionPlanner p(auto_planner());
  const std::string good = p.save_state();
  ExecutionPlanner q(auto_planner());
  EXPECT_NO_THROW(q.restore_state(good));
  EXPECT_THROW(q.restore_state(""), std::invalid_argument);
  EXPECT_THROW(q.restore_state("notplanner 1 0 0 64 5"), std::invalid_argument);
  EXPECT_THROW(q.restore_state("planner 2 0 0 64 5"), std::invalid_argument);
  EXPECT_THROW(q.restore_state("planner 1 7 0 64 5"), std::invalid_argument);
  EXPECT_THROW(q.restore_state("planner 1 0 0 64 3"), std::invalid_argument);
  // Truncated model list.
  EXPECT_THROW(q.restore_state(good.substr(0, good.size() / 2)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts: identical calibration => identical plans
// => bit-identical selections at 1, 2, and 8 workers.

void expect_thread_count_invariant(const Problem& p, std::uint64_t world_seed) {
  const sim::World w(p, world_seed);
  sim::AttackTrace base;
  std::vector<PlanRecord> base_plans;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    PmArestOptions o;
    o.batch_size = 5;
    o.allow_retries = true;
    o.pool = pool.get();
    o.planner = auto_planner();
    PmArest strategy(o);
    const auto trace = run_attack(p, w, strategy, 40.0);
    ASSERT_GT(trace.batches.size(), 0u);
    const auto plans = plan_records(strategy.planner());
    ASSERT_EQ(plans.size(), trace.batches.size());
    if (threads == 0) {
      base = trace;
      base_plans = plans;
    } else {
      expect_traces_equal(base, trace,
                          "threads=" + std::to_string(threads));
      EXPECT_EQ(base_plans, plans) << "threads=" << threads;
    }
  }
}

TEST(PlannerDeterminism, AutoPlansIdenticalAcrossThreadCountsBA) {
  expect_thread_count_invariant(ba_problem(11), 101);
}

TEST(PlannerDeterminism, AutoPlansIdenticalAcrossThreadCountsER) {
  expect_thread_count_invariant(er_problem(12), 102);
}

TEST(PlannerDeterminism, FallbackAutoIdenticalAcrossThreadCountsFrozenClock) {
  const Problem p = er_problem(13, 50, 180);
  const sim::World w(p, 103);
  sim::AttackTrace base;
  std::vector<PlanRecord> base_plans;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    solver::FallbackOptions o;
    o.batch_size = 2;
    o.scenarios_per_batch = 120;
    o.exact_deadline_seconds = 30.0;
    o.saa_deadline_seconds = 30.0;
    o.candidate_cap = 10;
    o.pool = pool.get();
    o.planner = auto_planner();
    // Frozen ns/unit EWMAs make even the deadline gate a pure function of
    // checkpointable state — the configuration the contract guarantees.
    o.planner.calibrate_time = false;
    solver::FallbackStrategy strategy(o);
    const auto trace = run_attack(p, w, strategy, 8.0);
    ASSERT_GT(trace.batches.size(), 0u);
    const auto plans = plan_records(strategy.planner());
    if (threads == 0) {
      base = trace;
      base_plans = plans;
    } else {
      expect_traces_equal(base, trace,
                          "fallback threads=" + std::to_string(threads));
      EXPECT_EQ(base_plans, plans) << "fallback threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Same-process campaign isolation (the calibration-globalism regression):
// a planner-hosted campaign must not touch the process-wide calibration,
// and two same-seed campaigns in one process must be identical.

TEST(PlannerCalibration, PlannerRunsLeaveProcessCalibrationUntouched) {
  const std::uint64_t sentinel = 12345;
  process_shard_calibration().set_raw(sentinel);
  const Problem p = ba_problem(21);
  const sim::World w(p, 201);
  PmArestOptions o;
  o.batch_size = 6;
  o.planner = auto_planner();
  PmArest strategy(o);
  run_attack(p, w, strategy, 30.0);
  EXPECT_EQ(process_shard_calibration().raw(), sentinel)
      << "planner campaign leaked into the process-wide shard calibration";
  reset_shard_calibration_for_test();
  EXPECT_EQ(process_shard_calibration().raw(),
            ShardCalibration::kColdStartNanosPerUnit);
}

TEST(PlannerCalibration, BackToBackSameSeedCampaignsAreIdentical) {
  const Problem p = ba_problem(22);
  const sim::World w(p, 202);
  auto run_once = [&] {
    PmArestOptions o;
    o.batch_size = 5;
    o.allow_retries = true;
    o.planner = auto_planner();
    PmArest strategy(o);
    auto trace = run_attack(p, w, strategy, 40.0);
    return std::make_pair(std::move(trace), plan_records(strategy.planner()));
  };
  const auto first = run_once();
  const auto second = run_once();  // warm process, fresh strategy
  expect_traces_equal(first.first, second.first, "same-process rerun");
  EXPECT_EQ(first.second, second.second);
}

TEST(PlannerCalibration, LegacyPathIsReproducibleAfterTestReset) {
  const Problem p = ba_problem(23);
  const sim::World w(p, 203);
  auto run_once = [&] {
    // Legacy planner-off path shares the process-wide calibration; the reset
    // hook restores cold-start state so reruns are reproducible by
    // construction, not just by the layout-neutrality argument.
    reset_shard_calibration_for_test();
    PmArest strategy(PmArestOptions{.batch_size = 5, .use_cache = false});
    return run_attack(p, w, strategy, 30.0);
  };
  const auto a = run_once();
  const auto b = run_once();
  expect_traces_equal(a, b, "legacy rerun");
}

// ---------------------------------------------------------------------------
// Checkpoint/resume: a resumed campaign replans identically from the restore
// point, including under faults and retry backoff.

TEST(PlannerCheckpoint, PmArestAutoResumeReplansIdentically) {
  const Problem p = ba_problem(31);
  const sim::World w(p, 301);
  PmArestOptions o;
  o.batch_size = 6;
  o.allow_retries = true;
  o.planner = auto_planner();

  PmArest full_strategy(o);
  const auto full = run_attack(p, w, full_strategy, 45.0);
  const auto full_plans = plan_records(full_strategy.planner());

  TempFile f("recon_planner_resume.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 3;
  stop.checkpoint_path = f.path;
  PmArest first_half(o);
  run_attack(p, w, first_half, 45.0, stop);
  const auto first_plans = plan_records(first_half.planner());

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  const sim::World resumed_world(p, cp.world_seed);
  AttackRunOptions resume;
  resume.resume = &cp;
  PmArest second_half(o);
  const auto resumed = run_attack(p, resumed_world, second_half, 45.0, resume);
  expect_traces_equal(full, resumed, "planner resume");

  // The resumed planner's decision sequence must equal the uninterrupted
  // run's suffix bit-for-bit — cached tier included. The cache-accounting
  // overlay (sparse last-seen attempts + accounting-dirty set) rides in the
  // checkpoint, so the rebuilt cache feeds the planner the same per-batch
  // work counts the warm run observed instead of re-learning its work-ratio
  // EWMA from a cold full-frontier rescore.
  const auto tail = plan_records(second_half.planner());
  ASSERT_EQ(first_plans.size() + tail.size(), full_plans.size());
  for (std::size_t i = 0; i < first_plans.size(); ++i) {
    EXPECT_EQ(full_plans[i], first_plans[i]) << "pre-stop decision " << i;
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(full_plans[first_plans.size() + i], tail[i])
        << "post-resume decision " << i;
  }
}

TEST(PlannerCheckpoint, PmArestResumeRestoresFullStateBitExact) {
  const Problem p = ba_problem(34);
  const sim::World w(p, 304);
  PmArestOptions o;
  o.batch_size = 6;
  o.allow_retries = true;
  o.planner = auto_planner();
  // Freeze the wall-clock feeds (ns/unit EWMAs + shard calibration): every
  // remaining bit of strategy state is then a pure function of the campaign.
  o.planner.calibrate_time = false;

  PmArest full_strategy(o);
  const auto full = run_attack(p, w, full_strategy, 45.0);

  TempFile f("recon_planner_fullstate.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 3;
  stop.checkpoint_path = f.path;
  PmArest first_half(o);
  run_attack(p, w, first_half, 45.0, stop);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  const sim::World resumed_world(p, cp.world_seed);
  AttackRunOptions resume;
  resume.resume = &cp;
  PmArest second_half(o);
  const auto resumed = run_attack(p, resumed_world, second_half, 45.0, resume);
  expect_traces_equal(full, resumed, "full-state resume");

  // FULL strategy state — varying-k RNG words, the cache-accounting section,
  // and the planner blob (EWMAs as IEEE-754 bit patterns) — is bit-identical
  // across the resume, not just the selections it produces.
  EXPECT_EQ(second_half.save_state(), full_strategy.save_state());

  // Checkpoint -> checkpoint round-trip is lossless even before the rebuilt
  // cache exists: a freshly restored strategy re-emits the same blob.
  PmArest reloaded(o);
  reloaded.restore_state(second_half.save_state());
  EXPECT_EQ(reloaded.save_state(), second_half.save_state());
}

TEST(PlannerCheckpoint, PmArestAutoResumeUnderFaultsAndRetries) {
  const Problem p = ba_problem(32);
  const sim::World w(p, 302);
  sim::FaultOptions fo;
  fo.timeout_rate = 0.2;
  fo.throttle_rate = 0.15;
  fo.suspension.max_requests = 20;
  fo.suspension.window_ticks = 3;
  fo.suspension.lockout_ticks = 2;
  fo.seed = 9;
  RetryPolicy retry;
  retry.backoff = RetryBackoff::kExponential;
  retry.base_delay = 1.0;
  retry.max_delay = 4.0;
  retry.jitter = 0.25;
  PmArestOptions o;
  o.batch_size = 6;
  o.allow_retries = true;
  o.planner = auto_planner();

  auto make_options = [&](sim::FaultModel& fm) {
    AttackRunOptions ro;
    ro.fault = &fm;
    ro.retry = &retry;
    return ro;
  };

  sim::FaultModel fm_full(fo);
  PmArest full_strategy(o);
  const auto full = run_attack(p, w, full_strategy, 45.0, make_options(fm_full));

  TempFile f("recon_planner_faulted.ckpt");
  sim::FaultModel fm_half(fo);
  auto stop = make_options(fm_half);
  stop.stop_after_rounds = 3;
  stop.checkpoint_path = f.path;
  PmArest first_half(o);
  run_attack(p, w, first_half, 45.0, stop);

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  const sim::World resumed_world(p, cp.world_seed);
  sim::FaultModel fm_resume(fo);
  auto resume = make_options(fm_resume);
  resume.resume = &cp;
  PmArest second_half(o);
  const auto resumed = run_attack(p, resumed_world, second_half, 45.0, resume);
  expect_traces_equal(full, resumed, "planner resume under faults");
}

TEST(PlannerCheckpoint, FallbackAutoResumeReplansIdentically) {
  const Problem p = er_problem(33, 50, 180);
  const sim::World w(p, 303);
  solver::FallbackOptions o;
  o.batch_size = 2;
  o.scenarios_per_batch = 100;
  o.exact_deadline_seconds = 30.0;
  o.saa_deadline_seconds = 30.0;
  o.candidate_cap = 10;
  o.planner = auto_planner();
  o.planner.calibrate_time = false;

  solver::FallbackStrategy full_strategy(o);
  const auto full = run_attack(p, w, full_strategy, 8.0);
  const auto full_plans = plan_records(full_strategy.planner());
  ASSERT_GT(full.batches.size(), 2u);

  TempFile f("recon_planner_fallback.ckpt");
  AttackRunOptions stop;
  stop.stop_after_rounds = 2;
  stop.checkpoint_path = f.path;
  solver::FallbackStrategy first_half(o);
  run_attack(p, w, first_half, 8.0, stop);
  const auto first_plans = plan_records(first_half.planner());

  const AttackCheckpoint cp = read_checkpoint_file(f.path);
  const sim::World resumed_world(p, cp.world_seed);
  AttackRunOptions resume;
  resume.resume = &cp;
  solver::FallbackStrategy second_half(o);
  const auto resumed = run_attack(p, resumed_world, second_half, 8.0, resume);
  expect_traces_equal(full, resumed, "fallback planner resume");
  const auto tail = plan_records(second_half.planner());
  ASSERT_GE(full_plans.size(), first_plans.size());
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(full_plans[first_plans.size() + i], tail[i])
        << "post-resume decision " << i;
  }
  // With calibrate_time frozen the fallback's full state (planner blob)
  // is bit-identical across the resume as well.
  EXPECT_EQ(second_half.save_state(), full_strategy.save_state());
}

TEST(PlannerCheckpoint, StateBlobPresentOnlyWhenEnabled) {
  PmArestOptions off;
  off.batch_size = 4;
  PmArest legacy(off);
  const Problem p = ba_problem(34);
  const sim::World w(p, 304);
  run_attack(p, w, legacy, 20.0);
  // Planner off: the state line is byte-identical to pre-planner builds.
  EXPECT_EQ(legacy.save_state().find("planner"), std::string::npos);

  PmArestOptions on = off;
  on.planner = auto_planner();
  PmArest planned(on);
  run_attack(p, w, planned, 20.0);
  EXPECT_NE(planned.save_state().find("planner"), std::string::npos);

  // A planner-enabled strategy refuses a planner-less (legacy) blob.
  PmArest target(on);
  EXPECT_THROW(target.restore_state(legacy.save_state()),
               std::invalid_argument);
  EXPECT_NO_THROW(target.restore_state(planned.save_state()));
  EXPECT_EQ(target.save_state(), planned.save_state());
}

// ---------------------------------------------------------------------------
// Forced-tier parity: `fixed:<s>` must reproduce the legacy flag-driven
// dispatch byte for byte (same selector, same arguments).

TEST(PlannerParity, PmFixedTiersMatchLegacyFlags) {
  const Problem p = ba_problem(41, 60);
  const sim::World w(p, 401);
  const auto run_pm = [&](PmArestOptions o) {
    PmArest s(o);
    return run_attack(p, w, s, 24.0);
  };
  struct Case {
    PlanStrategy fixed;
    bool use_cache;
    bool use_branch_tree;
    int k;
  };
  for (const Case c : {Case{PlanStrategy::kCollapsedCached, true, false, 5},
                       Case{PlanStrategy::kCollapsedUncached, false, false, 5},
                       Case{PlanStrategy::kBranchTree, false, true, 3}}) {
    PmArestOptions legacy;
    legacy.batch_size = c.k;
    legacy.allow_retries = true;
    legacy.use_cache = c.use_cache;
    legacy.use_branch_tree = c.use_branch_tree;
    PmArestOptions forced = legacy;
    forced.use_cache = true;  // ignored: planner overrides dispatch
    forced.use_branch_tree = false;
    forced.planner = fixed_planner(c.fixed);
    expect_traces_equal(run_pm(legacy), run_pm(forced),
                        std::string("pm fixed:") + plan_strategy_name(c.fixed));
  }
}

TEST(PlannerParity, FallbackFixedTiersMatchLegacyLadder) {
  const Problem p = er_problem(42, 50, 180);
  const sim::World w(p, 402);
  const auto run_fb = [&](solver::FallbackOptions o) {
    solver::FallbackStrategy s(o);
    auto trace = run_attack(p, w, s, 8.0);
    return std::make_pair(std::move(trace), s.tier_counts());
  };
  solver::FallbackOptions base;
  base.batch_size = 2;
  base.scenarios_per_batch = 100;
  base.candidate_cap = 10;

  // fixed:exact == legacy with generous deadlines (exact tier always wins).
  {
    solver::FallbackOptions legacy = base;
    legacy.exact_deadline_seconds = 30.0;
    legacy.saa_deadline_seconds = 30.0;
    solver::FallbackOptions forced = legacy;
    forced.planner = fixed_planner(PlanStrategy::kSaaExact);
    const auto a = run_fb(legacy);
    const auto b = run_fb(forced);
    ASSERT_GT(a.second.exact, 0u);
    EXPECT_EQ(b.second.exact, a.second.exact);
    expect_traces_equal(a.first, b.first, "fallback fixed:exact");
  }
  // fixed:saa == legacy with the exact tier disabled.
  {
    solver::FallbackOptions legacy = base;
    legacy.exact_deadline_seconds = 0.0;
    legacy.saa_deadline_seconds = 30.0;
    solver::FallbackOptions forced = base;
    forced.exact_deadline_seconds = 0.0;
    forced.saa_deadline_seconds = 30.0;
    forced.planner = fixed_planner(PlanStrategy::kSaaGreedy);
    const auto a = run_fb(legacy);
    const auto b = run_fb(forced);
    ASSERT_GT(a.second.saa_greedy, 0u);
    EXPECT_EQ(b.second.saa_greedy, a.second.saa_greedy);
    expect_traces_equal(a.first, b.first, "fallback fixed:saa");
  }
  // fixed:greedy == legacy with both SAA tiers disabled (pure floor).
  {
    solver::FallbackOptions legacy = base;
    legacy.exact_deadline_seconds = 0.0;
    legacy.saa_deadline_seconds = 0.0;
    solver::FallbackOptions forced = legacy;
    forced.planner = fixed_planner(PlanStrategy::kCollapsedUncached);
    const auto a = run_fb(legacy);
    const auto b = run_fb(forced);
    EXPECT_EQ(b.second.lazy_greedy, a.second.lazy_greedy);
    expect_traces_equal(a.first, b.first, "fallback fixed:greedy");
  }
}

TEST(PlannerParity, MipFixedTiersMatchLegacyFlags) {
  const Problem p = er_problem(43, 40, 140);
  const sim::World w(p, 403);
  const auto run_mip = [&](solver::MipStrategyOptions o) {
    solver::MipBatchStrategy s(o);
    return run_attack(p, w, s, 6.0);
  };
  solver::MipStrategyOptions base;
  base.batch_size = 2;
  base.scenarios_per_batch = 80;
  base.candidate_cap = 8;

  // fixed:exact == legacy exact B&B (greedy_only = false).
  {
    solver::MipStrategyOptions forced = base;
    forced.planner = fixed_planner(PlanStrategy::kSaaExact);
    expect_traces_equal(run_mip(base), run_mip(forced), "mip fixed:exact");
  }
  // fixed:saa == legacy greedy_only.
  {
    solver::MipStrategyOptions legacy = base;
    legacy.greedy_only = true;
    solver::MipStrategyOptions forced = base;
    forced.planner = fixed_planner(PlanStrategy::kSaaGreedy);
    expect_traces_equal(run_mip(legacy), run_mip(forced), "mip fixed:saa");
  }
  // Auto with no deadline keeps the legacy quality-first choice — the exact
  // tier — while the campaign has room, but the remaining-budget gate
  // deterministically demotes the near-exhausted tail (remaining < 2k unit-
  // cost requests) to SAA-greedy: spending the most solver time on the
  // final, mostly-truncated batch is exactly backwards. Budget 6 at k=2
  // plans at remaining 6, 4, 2 -> exact, exact, greedy.
  {
    solver::MipStrategyOptions auto_opts = base;
    auto_opts.planner = auto_planner();
    solver::MipBatchStrategy s(auto_opts);
    const auto trace = run_attack(p, w, s, 6.0);
    EXPECT_EQ(trace.batches.size(), 3u);
    const auto& log = s.planner().decision_log();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].strategy, PlanStrategy::kSaaExact);
    EXPECT_EQ(log[1].strategy, PlanStrategy::kSaaExact);
    EXPECT_EQ(log[2].strategy, PlanStrategy::kSaaGreedy);
    // Re-running the identical campaign reproduces the same demotion point.
    solver::MipBatchStrategy again(auto_opts);
    const auto trace2 = run_attack(p, w, again, 6.0);
    expect_traces_equal(trace, trace2, "mip auto budget-gate determinism");
    ASSERT_EQ(again.planner().decision_log().size(), 3u);
    EXPECT_EQ(again.planner().decision_log()[2].strategy,
              PlanStrategy::kSaaGreedy);
  }
}

TEST(PlannerParity, InadmissibleFixedStrategiesAreRejected) {
  PmArestOptions pm;
  pm.planner = fixed_planner(PlanStrategy::kSaaExact);
  EXPECT_THROW(PmArest{pm}, std::invalid_argument);
  pm.planner = fixed_planner(PlanStrategy::kSaaGreedy);
  EXPECT_THROW(PmArest{pm}, std::invalid_argument);

  solver::FallbackOptions fb;
  fb.planner = fixed_planner(PlanStrategy::kCollapsedCached);
  EXPECT_THROW(solver::FallbackStrategy{fb}, std::invalid_argument);
  fb.planner = fixed_planner(PlanStrategy::kBranchTree);
  EXPECT_THROW(solver::FallbackStrategy{fb}, std::invalid_argument);

  solver::MipStrategyOptions mip;
  mip.planner = fixed_planner(PlanStrategy::kCollapsedUncached);
  EXPECT_THROW(solver::MipBatchStrategy{mip}, std::invalid_argument);
  mip.planner = fixed_planner(PlanStrategy::kCollapsedCached);
  EXPECT_THROW(solver::MipBatchStrategy{mip}, std::invalid_argument);
  mip.planner = fixed_planner(PlanStrategy::kBranchTree);
  EXPECT_THROW(solver::MipBatchStrategy{mip}, std::invalid_argument);
}

}  // namespace
}  // namespace recon::core
