// Robustness tests: degenerate problem parameters and boundary conditions
// across the whole attack pipeline.
#include <gtest/gtest.h>

#include <memory>

#include "core/attack.h"
#include "core/batch_select.h"
#include "core/m_arest.h"
#include "core/pm_arest.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

Problem base_problem(double q, double edge_p, std::size_t targets = 10) {
  sim::ProblemOptions opts;
  opts.num_targets = targets;
  opts.base_acceptance = q;
  opts.seed = 5;
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(40, 80, 3),
                               graph::EdgeProbModel::constant(edge_p), 4),
      opts);
}

TEST(EdgeCases, EveryoneRejects) {
  // q = 0: no request ever succeeds; the attack still runs to budget (each
  // rejection is recorded), benefit stays 0, no crash.
  const Problem p = base_problem(0.0, 0.8);
  const sim::World w(p, 1);
  PmArest strategy(PmArestOptions{.batch_size = 5});
  const auto trace = run_attack(p, w, strategy, 20.0);
  EXPECT_DOUBLE_EQ(trace.total_benefit(), 0.0);
  EXPECT_EQ(trace.total_accepts(), 0u);
  // q = 0 zeroes every marginal, so selection may stop immediately — either
  // behaviour (empty first batch or rejected batches) is acceptable; what
  // matters is budget is never exceeded.
  EXPECT_LE(trace.total_requests(), 20u);
}

TEST(EdgeCases, EveryoneAccepts) {
  const Problem p = base_problem(1.0, 1.0);
  const sim::World w(p, 1);
  PmArest strategy(PmArestOptions{.batch_size = 5});
  const auto trace = run_attack(p, w, strategy, 20.0);
  EXPECT_EQ(trace.total_accepts(), 20u);
  // With p = q = 1 the world is deterministic: all edges revealed present.
  sim::Observation obs(p);
  for (const auto& b : trace.batches) {
    for (NodeId u : b.requests) obs.record_accept(u, w.true_neighbors(u));
  }
  EXPECT_DOUBLE_EQ(obs.benefit().total(), trace.total_benefit());
}

TEST(EdgeCases, NoEdgesExist) {
  // p_e = 0: no FoFs, no edge benefit, only direct target friendships.
  const Problem p = base_problem(1.0, 0.0);
  const sim::World w(p, 1);
  PmArest strategy(PmArestOptions{.batch_size = 4});
  const auto trace = run_attack(p, w, strategy, 12.0);
  const auto b = trace.final_breakdown();
  EXPECT_DOUBLE_EQ(b.fofs, 0.0);
  EXPECT_DOUBLE_EQ(b.edges, 0.0);
  EXPECT_GT(b.friends, 0.0);  // greedy goes straight for targets
}

TEST(EdgeCases, NoTargets) {
  // Zero targets: only the (tiny) edge-reveal benefit remains (Bi = 1/M for
  // target-free edges); greedy still operates and accounting holds.
  const Problem p = base_problem(0.5, 0.7, 0);
  const sim::World w(p, 2);
  MArest strategy;
  const auto trace = run_attack(p, w, strategy, 10.0);
  const auto b = trace.final_breakdown();
  EXPECT_DOUBLE_EQ(b.friends, 0.0);
  EXPECT_DOUBLE_EQ(b.fofs, 0.0);
  EXPECT_GE(b.edges, 0.0);
}

TEST(EdgeCases, EveryoneIsATarget) {
  const Problem p = base_problem(0.5, 0.7, 1000);  // clamped to n
  EXPECT_EQ(p.targets.size(), 40u);
  const sim::World w(p, 3);
  PmArest strategy(PmArestOptions{.batch_size = 5});
  const auto trace = run_attack(p, w, strategy, 15.0);
  EXPECT_GT(trace.total_benefit(), 0.0);
}

TEST(EdgeCases, DisconnectedGraph) {
  graph::GraphBuilder b(10);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);
  // Nodes 4..9 isolated.
  sim::Problem p;
  p.graph = b.build();
  p.targets = {0, 1, 2, 3, 4};
  p.is_target = {1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(1.0);
  p.validate();
  const sim::World w(p, 1);
  PmArest strategy(PmArestOptions{.batch_size = 3});
  const auto trace = run_attack(p, w, strategy, 10.0);
  // All five targets (including isolated 4) are eventually befriended.
  EXPECT_GE(trace.total_benefit(), 5.0);
}

TEST(EdgeCases, BatchLargerThanGraph) {
  const Problem p = base_problem(0.5, 0.7);
  const sim::World w(p, 4);
  PmArest strategy(PmArestOptions{.batch_size = 1000});
  const auto trace = run_attack(p, w, strategy, 200.0);
  // One batch containing every node with positive gain, then exhaustion.
  EXPECT_LE(trace.total_requests(), 40u);
  EXPECT_LE(trace.batches.size(), 2u);
}

TEST(EdgeCases, SingleNodeGraph) {
  graph::GraphBuilder b(1);
  sim::Problem p;
  p.graph = b.build();
  p.targets = {0};
  p.is_target = {1};
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(1.0);
  p.validate();
  const sim::World w(p, 1);
  MArest strategy;
  const auto trace = run_attack(p, w, strategy, 5.0);
  EXPECT_EQ(trace.total_requests(), 1u);
  EXPECT_DOUBLE_EQ(trace.total_benefit(), 1.0);
}

// Fig. 4's ordering claim as a parameterized integration property: on every
// dataset stand-in (small scale), E[Q] is nonincreasing in batch size and
// M-AReST tops the ranking, within Monte-Carlo tolerance.
class Fig4Ordering : public ::testing::TestWithParam<graph::DatasetId> {};

TEST_P(Fig4Ordering, SequentialDominatesBatches) {
  const graph::Dataset ds = graph::make_dataset(GetParam(), 0.12, 77);
  sim::ProblemOptions opts;
  opts.num_targets = std::max<std::size_t>(15, ds.graph.num_nodes() / 25);
  opts.target_mode = sim::TargetMode::kBfsBall;
  opts.base_acceptance = 0.3;
  opts.seed = 7;
  const Problem p = sim::make_problem(ds.graph, opts);
  const double budget = 45.0;
  const int runs = 8;
  auto mean_for = [&](int k) {
    return run_monte_carlo(
               p,
               [k](int) {
                 if (k == 1) return std::unique_ptr<Strategy>(new MArest());
                 return std::unique_ptr<Strategy>(
                     new PmArest(PmArestOptions{.batch_size = k}));
               },
               runs, budget, 41)
        .mean_benefit();
  };
  const double m = mean_for(1);
  const double pm5 = mean_for(5);
  const double pm15 = mean_for(15);
  EXPECT_GE(m, pm5 * 0.96) << ds.name;
  EXPECT_GE(pm5, pm15 * 0.93) << ds.name;
  EXPECT_GT(pm15, 0.0) << ds.name;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, Fig4Ordering,
                         ::testing::Values(graph::DatasetId::kEnronEmail,
                                           graph::DatasetId::kFacebook,
                                           graph::DatasetId::kSlashdot,
                                           graph::DatasetId::kTwitter),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case graph::DatasetId::kEnronEmail: return "enron";
                             case graph::DatasetId::kFacebook: return "facebook";
                             case graph::DatasetId::kSlashdot: return "slashdot";
                             case graph::DatasetId::kTwitter: return "twitter";
                             default: return "other";
                           }
                         });

}  // namespace
}  // namespace recon::core
