// Quickstart: build a small social network, mount a PM-AReST reconnaissance
// attack against it, and print what the attacker learned.
//
//   ./examples/quickstart [--seed N] [--budget K] [--batch k]
#include <cstdio>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "sim/problem.h"
#include "util/env.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const std::uint64_t seed = args.get_int("seed", 2017);
  const double budget = args.get_double("budget", 60.0);
  const int batch_size = static_cast<int>(args.get_int("batch", 5));

  // 1. A 300-node small-world network whose edge probabilities come from a
  //    structural link-prediction prior.
  graph::Graph g = graph::watts_strogatz(300, 6, 0.1, seed);
  g = graph::assign_edge_probs(g, graph::EdgeProbModel::structural(0.4, 0.5), seed);

  // 2. A Max-Crawling problem: 30 targets forming an "organization" (a BFS
  //    ball), the paper's benefit model, and mutual-friend-boosted
  //    acceptance.
  sim::ProblemOptions opts;
  opts.num_targets = 30;
  opts.target_mode = sim::TargetMode::kBfsBall;
  opts.base_acceptance = 0.25;
  opts.mutual_boost = 0.15;  // each mutual friend shrinks refusal by 15%
  opts.seed = seed;
  const sim::Problem problem = sim::make_problem(std::move(g), opts);

  // 3. PM-AReST with batches of `batch_size` and retries enabled.
  core::PmArestOptions strat_opts;
  strat_opts.batch_size = batch_size;
  strat_opts.allow_retries = true;
  core::PmArest strategy(strat_opts);

  // 4. One simulated attack against a sampled ground-truth world.
  const sim::World world(problem, util::derive_seed(seed, 1));
  const sim::AttackTrace trace = core::run_attack(problem, world, strategy, budget);

  std::printf("strategy          : %s\n", strategy.name().c_str());
  std::printf("requests sent     : %zu (budget %.0f)\n", trace.total_requests(), budget);
  std::printf("requests accepted : %zu\n", trace.total_accepts());
  const auto b = trace.final_breakdown();
  std::printf("benefit           : %.3f total = %.3f friends + %.3f FoFs + %.3f edges\n",
              b.total(), b.friends, b.fofs, b.edges);
  std::printf("batches:\n");
  for (std::size_t i = 0; i < trace.batches.size(); ++i) {
    const auto& batch = trace.batches[i];
    std::size_t accepts = 0;
    for (auto a : batch.accepted) accepts += a;
    std::printf("  #%2zu  sent %2zu  accepted %2zu  Q -> %7.3f\n", i + 1,
                batch.requests.size(), accepts, batch.cumulative.total());
  }
  return 0;
}
