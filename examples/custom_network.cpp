// Attacking a user-supplied network: load an edge list, estimate edge
// probabilities with link prediction, attach homophily attributes, and run
// an attribute-aware attack. Demonstrates the full data-in pipeline.
//
//   ./examples/custom_network [edge_list.txt] [--budget K] [--seed S]
//
// Without a file argument, a demo edge list is written to a temporary
// location and used, so the example is always runnable.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "linkpred/calibration.h"
#include "sim/problem.h"
#include "util/env.h"

namespace {

std::string write_demo_edge_list() {
  // Two communities bridged by a few edges — written via the library's own
  // generator + IO so the file is a faithful sample of the format.
  const auto g = recon::graph::stochastic_block_model(120, 2, 0.18, 0.01, 99);
  const std::string path = "/tmp/recon_demo_edges.txt";
  recon::graph::write_edge_list_file(path, g);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const std::uint64_t seed = args.get_int("seed", 5);
  const double budget = args.get_double("budget", 50.0);

  const std::string path = args.positional().empty() ? write_demo_edge_list()
                                                     : args.positional().front();
  std::printf("loading edge list: %s\n", path.c_str());
  graph::Graph g = graph::read_edge_list_file(path);
  const auto deg = graph::degree_stats(g);
  std::printf("graph: %u nodes, %u edges, mean degree %.1f, %zu components\n",
              g.num_nodes(), g.num_edges(), deg.mean, graph::connected_components(g));

  // 1. Edge probabilities via Adamic-Adar scores calibrated with logistic
  //    regression on the observed structure (Sec. II-A's link prediction).
  g = linkpred::calibrate_edge_probs(g, linkpred::ScoreKind::kAdamicAdar, seed);
  double mean_p = 0.0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) mean_p += g.edge_prob(e);
  std::printf("link-prediction edge beliefs: mean p = %.3f\n",
              mean_p / g.num_edges());

  // 2. Synthetic profile attributes (location / employer / school) with
  //    homophily, so the attacker's profile tuning matters.
  g = graph::assign_attributes(g, 3, 12, 0.7, seed + 1);

  // 3. Problem with attribute-similarity-boosted acceptance.
  sim::ProblemOptions opts;
  opts.num_targets = 20;
  opts.target_mode = sim::TargetMode::kBfsBall;
  opts.seed = seed;
  sim::Problem problem = sim::make_problem(std::move(g), opts);
  problem.acceptance = sim::make_attribute_acceptance(
      problem.graph, /*base_q=*/0.15, /*attr_weight=*/0.35, /*mutual_boost=*/0.1,
      seed + 2);
  problem.validate();

  // 4. Attack.
  core::PmArestOptions strat_opts;
  strat_opts.batch_size = 5;
  strat_opts.allow_retries = true;
  core::PmArest strategy(strat_opts);
  const sim::World world(problem, util::derive_seed(seed, 9));
  const auto trace = core::run_attack(problem, world, strategy, budget);

  const auto b = trace.final_breakdown();
  std::printf("\nattack result with %s:\n", strategy.name().c_str());
  std::printf("  requests %zu, accepts %zu\n", trace.total_requests(),
              trace.total_accepts());
  std::printf("  benefit %.3f (friends %.2f, FoFs %.2f, edges %.2f)\n", b.total(),
              b.friends, b.fofs, b.edges);
  std::size_t targets_befriended = 0, targets_fof = 0;
  sim::Observation replay(problem);  // reconstruct final state for reporting
  for (const auto& batch : trace.batches) {
    for (std::size_t i = 0; i < batch.requests.size(); ++i) {
      if (batch.accepted[i]) {
        replay.record_accept(batch.requests[i],
                             world.true_neighbors(batch.requests[i]));
      } else {
        replay.record_reject(batch.requests[i]);
      }
    }
  }
  for (graph::NodeId t : problem.targets) {
    targets_befriended += replay.is_friend(t);
    targets_fof += replay.is_fof(t);
  }
  std::printf("  targets befriended %zu / %zu, targets as FoF %zu\n",
              targets_befriended, problem.targets.size(), targets_fof);
  return 0;
}
