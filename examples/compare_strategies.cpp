// Strategy shoot-out: every attack strategy in the library on one network,
// including the two-stage-stochastic-programming (exact FOB) strategy on a
// small instance — a miniature of the paper's Figs. 4 & 6.
//
//   ./examples/compare_strategies [--runs N] [--budget K] [--seed S]
#include <cstdio>
#include <memory>

#include "core/attack.h"
#include "core/baselines.h"
#include "core/m_arest.h"
#include "core/pm_arest.h"
#include "graph/datasets.h"
#include "sim/problem.h"
#include "solver/strategy_mip.h"
#include "util/env.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const std::uint64_t seed = args.get_int("seed", 11);
  const int runs = static_cast<int>(args.get_int("runs", 10));
  const double budget = args.get_double("budget", 24.0);

  // The small US-Political-Books stand-in keeps the exact MIP tractable.
  const graph::Dataset ds = graph::make_dataset(graph::DatasetId::kUsPolBooks, 1.0, seed);
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.base_acceptance = 0.4;
  opts.seed = seed;
  const sim::Problem problem = sim::make_problem(ds.graph, opts);
  std::printf("network: %s (%u nodes, %u edges), %d runs, budget %.0f\n\n",
              ds.name.c_str(), problem.graph.num_nodes(), problem.graph.num_edges(),
              runs, budget);

  struct Entry {
    const char* label;
    core::StrategyFactory factory;
  };
  const int k = 4;
  const std::vector<Entry> entries{
      {"M-AReST (sequential)",
       [](int) { return std::make_unique<core::MArest>(); }},
      {"PM-AReST",
       [&](int) {
         return std::make_unique<core::PmArest>(core::PmArestOptions{.batch_size = k});
       }},
      {"PM-AReST + retries",
       [&](int) {
         return std::make_unique<core::PmArest>(
             core::PmArestOptions{.batch_size = k, .allow_retries = true});
       }},
      {"PM-AReST varying k in [2,6]",
       [&](int) {
         return std::make_unique<core::PmArest>(
             core::PmArestOptions{.batch_size = k, .vary_k_min = 2, .vary_k_max = 6});
       }},
      {"Exact MIP (SAA, 300 scenarios)",
       [&](int) {
         solver::MipStrategyOptions o;
         o.batch_size = k;
         o.scenarios_per_batch = 300;
         o.candidate_cap = 24;
         return std::make_unique<solver::MipBatchStrategy>(o);
       }},
      {"HighDegree heuristic",
       [&](int) { return std::make_unique<core::HighDegreeStrategy>(k); }},
      {"TargetFirst (naive)",
       [&](int) { return std::make_unique<core::TargetFirstStrategy>(k); }},
      {"Random",
       [&](int r) { return std::make_unique<core::RandomStrategy>(k, 900 + r); }},
  };

  util::Table table({"strategy", "E[benefit]", "E[accepts]", "batches", "sel time"});
  for (const auto& entry : entries) {
    const auto mc = core::run_monte_carlo(problem, entry.factory, runs, budget, seed);
    double accepts = 0.0, batches = 0.0, sel = 0.0;
    for (const auto& t : mc.traces) {
      accepts += static_cast<double>(t.total_accepts());
      batches += static_cast<double>(t.batches.size());
      sel += t.total_select_seconds();
    }
    const double n = static_cast<double>(mc.traces.size());
    table.add_row({entry.label, util::format_fixed(mc.mean_benefit(), 3),
                   util::format_fixed(accepts / n, 1),
                   util::format_fixed(batches / n, 1),
                   util::format_sci(sel / n) + "s"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "Expected ordering: M-AReST >= Exact MIP ~ PM-AReST(+retries) > heuristics.\n"
      "The exact two-stage solver buys only a sliver over greedy BATCHSELECT\n"
      "(the paper's Fig. 6 conclusion), at orders of magnitude more compute.\n");
  return 0;
}
