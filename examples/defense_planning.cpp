// Defense planning: the full defender workflow built on this library.
//
//  1. Simulate the strongest attacker (PM-AReST with retries) against your
//     network to collect attack traces.
//  2. Optimize honeypot/monitor placement with greedy submodular coverage
//     (maximizing attacker benefit *denied*), compared against the naive
//     frequency ranking and random placement.
//  3. Evaluate on held-out attack simulations: detection rate, benefit the
//     attacker keeps, and how the rate-limit + pattern detectors stack.
//
//   ./examples/defense_planning [--monitors M] [--runs N] [--seed S]
#include <cstdio>
#include <memory>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "defense/detector.h"
#include "defense/placement.h"
#include "graph/centrality.h"
#include "graph/datasets.h"
#include "sim/problem.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const std::uint64_t seed = args.get_int("seed", 13);
  const int runs = static_cast<int>(args.get_int("runs", 12));
  const auto monitors_budget = static_cast<std::size_t>(args.get_int("monitors", 8));

  const graph::Dataset ds = graph::make_dataset(graph::DatasetId::kEnronEmail, 0.3, seed);
  sim::ProblemOptions popts;
  popts.num_targets = 40;
  popts.target_mode = sim::TargetMode::kBfsBall;
  popts.base_acceptance = 0.3;
  popts.mutual_boost = 0.1;
  popts.seed = seed;
  const sim::Problem problem = sim::make_problem(ds.graph, popts);
  const double budget = 120.0;
  std::printf("planning defenses for the %s surrogate (%u nodes)\n\n",
              ds.name.c_str(), problem.graph.num_nodes());

  const core::StrategyFactory attacker = [](int) {
    core::PmArestOptions o;
    o.batch_size = 10;
    o.allow_retries = true;
    return std::make_unique<core::PmArest>(o);
  };

  // 1. Training traces (what the defender simulates in advance).
  const auto train =
      core::run_monte_carlo(problem, attacker, runs, budget, seed).traces;

  // 2. Three placements of equal size.
  defense::PlacementOptions place_opts;
  place_opts.budget_monitors = monitors_budget;
  place_opts.weight_by_denied_benefit = true;
  const auto optimized = defense::greedy_monitor_placement(
      train, problem.graph.num_nodes(), place_opts);
  const auto frequency = defense::choose_monitors_by_simulation(
      problem, monitors_budget, runs, budget, 10, seed);
  util::Rng rng(util::derive_seed(seed, 0xDEF));
  const auto random_ids = util::sample_without_replacement(
      problem.graph.num_nodes(), static_cast<std::uint32_t>(monitors_budget), rng);
  // Structural baseline: instrument the betweenness gatekeepers.
  const auto gatekeepers = graph::top_nodes(
      graph::betweenness_centrality(problem.graph), monitors_budget);

  // 3. Held-out evaluation (fresh worlds).
  const auto test =
      core::run_monte_carlo(problem, attacker, runs, budget, seed + 1).traces;
  double mean_q = 0.0;
  for (const auto& t : test) mean_q += t.total_benefit();
  mean_q /= static_cast<double>(test.size());
  std::printf("undefended attacker benefit (held-out): %.1f\n\n", mean_q);

  util::Table table({"placement", "detected", "E[Q kept by attacker]",
                     "E[requests before det]"});
  auto add = [&](const char* label, const std::vector<graph::NodeId>& monitors) {
    const defense::HoneypotMonitor monitor(monitors, problem.graph.num_nodes());
    const auto s = defense::summarize_detection(monitor, test, 3600.0);
    table.add_row({label, util::format_fixed(100 * s.detect_fraction, 0) + "%",
                   util::format_fixed(s.mean_benefit_before, 1),
                   util::format_fixed(s.mean_requests_before, 1)});
  };
  add("greedy coverage (ours)", optimized);
  add("frequency top-k", frequency);
  add("betweenness top-k", gatekeepers);
  add("random", {random_ids.begin(), random_ids.end()});
  std::printf("%s\n", table.to_text().c_str());

  std::printf("optimized monitors:");
  for (graph::NodeId u : optimized) {
    std::printf(" %u(deg %u)", u, problem.graph.degree(u));
  }
  std::printf("\n\nLayered with rate limiting (Yang et al., >20/hour):\n");
  const defense::RateLimitDetector rate(20, 3600.0);
  const auto rs = defense::summarize_detection(rate, test, 3600.0);
  std::printf("  rate limit alone detects %.0f%% of k=10 hourly attacks;\n",
              100 * rs.detect_fraction);
  std::printf(
      "  honeypots catch what rate limits miss — place them with coverage,\n"
      "  not frequency: same budget, attacker keeps less.\n");
  return 0;
}
