#!/bin/sh
# Captures the runtime-planner ablation into BENCH_planner.json
# (google-benchmark JSON format).
#
# Runs full PM-AReST campaigns from bench/bench_planner with the dispatch
# pinned to each selector (fixed_cached / fixed_uncached / fixed_tree) and
# with the cost-model-driven auto planner, at k in {4, 8, 16} on BA and ER
# graphs plus a million-node binary-substrate point. Read it as: for every
# (graph, k) row, auto's real_time should sit within a few percent of the
# best fixed variant and well under the worst (the branch tree where
# registered, uncached elsewhere). The exact gap is recorded in
# EXPERIMENTS.md next to the sweep recipe.
#
# The million-node point streams a ~250 MB binary graph to /tmp on first
# use and runs one iteration per variant; expect a few minutes end to end.
#
# Usage: tools/bench_planner.sh [build_dir] [out.json]
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_planner.json}"
BIN="$BUILD_DIR/bench/bench_planner"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_planner)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_repetitions="${RECON_BENCH_REPS:-1}" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
