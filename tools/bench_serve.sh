#!/bin/sh
# Captures the campaign-service throughput comparison into BENCH_serve.json
# (google-benchmark JSON format).
#
# Runs bench/bench_serve: the same N campaigns (N in {1, 4, 8}) through the
# resident `recon serve` daemon (problems built once, one shared ThreadPool
# with the MPMC injection ring, concurrent drivers) and through the
# per-process CLI pattern (rebuild the problem, spin up a fresh pool, run
# alone — once per campaign). Read it as: at every N, BM_ServeDaemon's
# real_time should sit well under BM_ServePerProcess, and the gap widens
# with N as the daemon overlaps campaigns the CLI pattern serializes. The
# `campaigns_per_s` counter is the headline throughput number quoted in
# EXPERIMENTS.md next to the multi-tenant recipe.
#
# Usage: tools/bench_serve.sh [build_dir] [out.json]
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_serve.json}"
BIN="$BUILD_DIR/bench/bench_serve"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_serve)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_repetitions="${RECON_BENCH_REPS:-1}" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
