#!/bin/sh
# Captures the graph-substrate load/scoring numbers into
# BENCH_graph_substrate.json (google-benchmark JSON format).
#
# Covers the three load paths (text parse, fully-verified binary map — the
# cold bound, trusted no-verify reopen — the warm bound) and the scoring
# throughput of one greedy batch on the degree-sorted vs as-built layouts,
# at n=10k and n=100k BA(m=8) instances. The headline claim is
# real_time(BM_LoadTextParse) / real_time(BM_LoadBinaryVerified) >= 10 at
# matching n.
#
# Usage: tools/bench_graph_substrate.sh [build_dir] [out.json]
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_graph_substrate.json}"
BIN="$BUILD_DIR/bench/bench_graph_substrate"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target bench_graph_substrate)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_Load|BM_BatchSelect' \
  --benchmark_repetitions="${RECON_BENCH_REPS:-1}" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
