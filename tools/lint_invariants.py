#!/usr/bin/env python3
"""Determinism & concurrency invariant linter for the recon codebase.

The repo guarantees bit-identical parallel vs. sequential batch selection and
bit-identical checkpoint-resume. The bug classes that break those guarantees
are statically detectable, and this linter rejects them at CI time:

  randomness       std::rand / srand / std::random_device. All randomness must
                   flow through util::Rng (seeded, counter-based) so runs are
                   reproducible and checkpointable.
  clock            Raw steady_clock/system_clock/high_resolution_clock::now()
                   or argless time(). Wall-clock reads must go through
                   util::WallTimer (and thus be visible as deadline code);
                   anything else risks timing leaking into selection.
  hash-order       Range-for / iterator loops over std::unordered_{map,set}
                   variables. Hash-order iteration leaks the hash seed and
                   insertion history into whatever the loop produces; extract
                   and sort keys first, or waive with a written reason.
  checkpoint-pair  A class declaring one side of a checkpoint field pair —
                   save_state/restore_state (Strategy state blobs) or
                   serialize/deserialize (record tokens) — must declare the
                   other, or resume silently loses state.
  format-pair      A file defining one side of a binary-format function pair
                   (write_<fmt>_binary_file / map_<fmt>_binary_file) must
                   define the other in the same translation unit, so a layout
                   change necessarily updates writer, reader, and checksum
                   together.
  guard            A class declaring a mutex member must annotate at least one
                   member RECON_GUARDED_BY(that mutex) (util/thread_annotations.h)
                   so clang -Wthread-safety has something to enforce, or waive
                   with a reason stating what the mutex is for.
  lockfree         compare_exchange_{strong,weak} outside a waiver. Hand-rolled
                   CAS loops must document their ownership protocol and
                   memory-order argument at the call site (and be exercised
                   under TSan); everything else should use util::Mutex or the
                   thread-pool primitives.
  durable-write    Raw std::rename / rename() calls. A bare rename publishes
                   a file with no fsync of either the contents or the parent
                   directory entry, so a crash can surface torn or lost data
                   at the destination. All durable publishes must go through
                   util::durable_rename (src/util/fs.cc), the one waived call
                   site.
  waiver           Malformed waivers: unknown rule name or empty reason.

Waiver grammar (one per flagged construct, on the flagged line or in the
comment block immediately above it; the reason may continue onto following
comment lines until the closing parenthesis):

    // lint:<rule>-ok(<non-empty reason>)

Usage:
    lint_invariants.py [PATH...]        lint .h/.cc files
                                        (default: src/ tools/recon_cli.cc
                                        tests/ — fixture trees are pruned)
    lint_invariants.py --selftest DIR   check fixture expectations in DIR
    lint_invariants.py --list-rules     print rule ids and summaries

Exit status: 0 clean, 1 findings (or selftest mismatch), 2 usage error.
Pure standard-library Python: no libclang dependency, so it runs identically
on dev boxes and CI. The matching is lexical (comments/strings stripped,
brace-matched class bodies) and shares its tokenizer, waiver grammar, and
fixture harness with tools/analyze_program.py via tools/lintlib/, which the
fixture selftest in tests/lint_fixtures/ keeps honest. Cross-TU properties
(lock-order cycles, checkpoint field coverage, hot-path purity, crash-point
registry honesty) live in analyze_program.py.
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lintlib.cpp import class_bodies  # noqa: E402
from lintlib.findings import Finding, print_findings  # noqa: E402
from lintlib.fixtures import run_selftest as _run_fixture_selftest  # noqa: E402
from lintlib.source import SourceFile, collect_files  # noqa: E402
from lintlib.waivers import Waivers  # noqa: E402

RULES = {
    "randomness": "banned randomness source (use util::Rng)",
    "clock": "raw wall-clock read (use util::WallTimer)",
    "hash-order": "iteration over unordered container (sort keys first)",
    "checkpoint-pair": "one-sided save_state/restore_state or "
                       "serialize/deserialize pair",
    "format-pair": "binary-format writer defined without its reader "
                   "(or vice versa) in the same file",
    "guard": "mutex member without a RECON_GUARDED_BY annotation",
    "lockfree": "hand-rolled CAS without a documented protocol",
    "durable-write": "raw rename() outside util::durable_rename "
                     "(publishes without fsync; torn on crash)",
    "waiver": "malformed waiver pragma",
}

# Files (repo-relative, '/'-separated suffix match) exempt from specific
# rules. Keep this list short and justified.
ALLOWLIST = {
    "randomness": (
        "src/util/rng.h",   # the sanctioned randomness wrapper itself
        "src/util/rng.cc",
    ),
    "clock": (
        "src/util/timer.h",   # the sanctioned WallTimer wrapper itself
        "src/solver/bnb.cc",  # deadline code (reads time via WallTimer today;
        "src/solver/fob.cc",  # allowlisted so deadline checks can evolve)
    ),
    "guard": (
        # The annotated Mutex wrapper necessarily owns a raw std::mutex.
        "src/util/thread_annotations.h",
    ),
}

BANNED = {
    "randomness": [
        (re.compile(r"\bstd\s*::\s*rand\b"), "std::rand"),
        (re.compile(r"(?<![\w:])srand\s*\("), "srand"),
        (re.compile(r"\brandom_device\b"), "std::random_device"),
    ],
    "clock": [
        (re.compile(r"\bsteady_clock\s*::\s*now\b"), "steady_clock::now"),
        (re.compile(r"\bsystem_clock\s*::\s*now\b"), "system_clock::now"),
        (
            re.compile(r"\bhigh_resolution_clock\s*::\s*now\b"),
            "high_resolution_clock::now",
        ),
        (
            re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
            "argless time()",
        ),
    ],
    # Lock-free algorithms are where determinism and memory-safety bugs hide
    # from every test that doesn't hit the exact interleaving. A CAS is only
    # acceptable next to a waiver stating the ownership protocol and
    # memory-order argument (which also flags the site for TSan coverage).
    "lockfree": [
        (
            re.compile(r"\bcompare_exchange_(?:strong|weak)\b"),
            "compare_exchange",
        ),
    ],
    # A rename publishes a file without any durability guarantee: neither the
    # file contents nor the directory entry are fsync'd, so a crash can leave
    # the destination pointing at lost or torn data. util::durable_rename
    # (src/util/fs.cc) wraps the fsync/rename/fsync-parent dance and is the
    # single sanctioned call site.
    "durable-write": [
        (re.compile(r"\bstd\s*::\s*rename\s*\("), "std::rename"),
        (re.compile(r"(?<![\w:.>])rename\s*\("), "raw rename()"),
    ],
}

# Field pairs the checkpoint-pair rule enforces inside a class body: a class
# writing state must also be able to read it back (and vice versa).
CHECKPOINT_PAIRS = (
    ("save_state", "restore_state"),  # Strategy/Rng opaque state blobs
    ("serialize", "deserialize"),     # checkpoint record tokens
)

# format-pair: a *definition* of write_<fmt>_binary_file or
# map_<fmt>_binary_file (parameter list followed by a body brace; plain
# declarations end in ';' and don't match). Both sides of a format must live
# in one translation unit so no layout change can touch only one of them.
FORMAT_FN_DEF_RE = re.compile(
    r"\b(write|map)_(\w+?)_binary_file\s*\([^;{]*\)\s*\{", re.S)

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;()]*?>\s+(\w+)\s*[;({=]"
)
MUTEX_MEMBER_RE = re.compile(r"\b(?:std\s*::\s*mutex|util\s*::\s*Mutex|Mutex)\s+(\w+)\s*;")


def lint_file(path: str, findings: list[Finding]) -> None:
    sf = SourceFile(path)
    rel = sf.path
    code = sf.code
    code_lines = sf.code_lines
    waivers = Waivers(rel, sf.raw_lines, findings, rules=RULES)

    def allowlisted(rule: str) -> bool:
        return any(rel.endswith(sfx) for sfx in ALLOWLIST.get(rule, ()))

    # --- randomness / clock bans -------------------------------------------
    for rule, patterns in BANNED.items():
        if allowlisted(rule):
            continue
        for lineno, cline in enumerate(code_lines, 1):
            for pat, label in patterns:
                if pat.search(cline) and not waivers.waived(rule, lineno):
                    findings.append(
                        Finding(rel, lineno, rule,
                                f"{label} is banned: {RULES[rule]}"))

    # --- hash-order iteration ----------------------------------------------
    unordered_names = {m.group(1) for m in UNORDERED_DECL_RE.finditer(code)}
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        range_for = re.compile(r"\bfor\s*\([^;)]*:\s*(?:\*?\s*)?(" + names + r")\s*\)")
        iter_for = re.compile(
            r"\bfor\s*\([^;)]*=\s*(" + names + r")\s*\.\s*c?begin\s*\(")
        for lineno, cline in enumerate(code_lines, 1):
            for pat in (range_for, iter_for):
                m = pat.search(cline)
                if m and not waivers.waived("hash-order", lineno):
                    findings.append(
                        Finding(rel, lineno, "hash-order",
                                f"loop over unordered container '{m.group(1)}': "
                                "iteration order depends on the hash seed and "
                                "insertion history; extract+sort keys, or waive "
                                "with lint:hash-order-ok(reason)"))

    # --- format-pair: binary writer/reader defined in the same file ---------
    defs: dict[str, dict[str, int]] = {}  # fmt stem -> side -> first def line
    for m in FORMAT_FN_DEF_RE.finditer(code):
        side, stem = m.group(1), m.group(2)
        defs.setdefault(stem, {}).setdefault(side, sf.line_of(m.start()))
    for stem, sides in sorted(defs.items()):
        if len(sides) == 2:
            continue
        side, lineno = next(iter(sides.items()))
        other = "map" if side == "write" else "write"
        if not waivers.waived("format-pair", lineno):
            findings.append(
                Finding(rel, lineno, "format-pair",
                        f"{side}_{stem}_binary_file is defined here without "
                        f"{other}_{stem}_binary_file; keep the binary writer "
                        "and reader in one file so a layout change updates "
                        "both sides and the checksum together"))

    # --- class-body rules: checkpoint-pair and guard ------------------------
    seen_guard: set[int] = set()
    seen_pair: set[tuple[int, str]] = set()
    for cb in class_bodies(code):
        name, body, body_start = cb.name, cb.body, cb.body_start
        cls_line = sf.line_of(cb.start)
        # checkpoint-pair: declaring one side of a serialization pair only.
        # (\bserialize does not match inside "deserialize": no word boundary.)
        for writer, reader in CHECKPOINT_PAIRS:
            has_writer = re.search(r"\b" + writer + r"\s*\(", body) is not None
            has_reader = re.search(r"\b" + reader + r"\s*\(", body) is not None
            if has_writer == has_reader or (cls_line, writer) in seen_pair:
                continue
            seen_pair.add((cls_line, writer))
            present = writer if has_writer else reader
            missing = reader if has_writer else writer
            if not waivers.waived("checkpoint-pair", cls_line):
                findings.append(
                    Finding(rel, cls_line, "checkpoint-pair",
                            f"class {name} declares {present} but not "
                            f"{missing}; checkpoint-resume would silently "
                            "lose or mis-restore this state"))
        # guard: every mutex member needs a GUARDED_BY(it) in the same body.
        if allowlisted("guard"):
            continue
        for mm in MUTEX_MEMBER_RE.finditer(body):
            mutex_name = mm.group(1)
            member_line = sf.line_of(body_start + mm.start())
            if member_line in seen_guard:
                continue
            guarded = re.search(
                r"\bRECON(?:_PT)?_GUARDED_BY\s*\(\s*" + re.escape(mutex_name)
                + r"\s*\)", body)
            if guarded is None:
                seen_guard.add(member_line)
                if not waivers.waived("guard", member_line):
                    findings.append(
                        Finding(rel, member_line, "guard",
                                f"mutex member '{mutex_name}' in {name} guards "
                                "no annotated member; add RECON_GUARDED_BY("
                                f"{mutex_name}) to the guarded fields (see "
                                "util/thread_annotations.h) or waive with "
                                "lint:guard-ok(reason)"))


def run_lint(paths: list[str]) -> int:
    findings: list[Finding] = []
    files = collect_files(paths, tool="lint_invariants")
    for path in files:
        lint_file(path, findings)
    print_findings(findings)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({len(files)} files clean)")
    return 0


EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([a-z-]+)")


def run_selftest(fixture_dir: str) -> int:
    """Every fixture declares its expected findings with `// lint-expect: rule`
    lines; `good_*` fixtures declare none and must lint clean. A fixture that
    over- or under-reports fails the selftest, so the linter cannot rot.
    Only files directly in the fixture directory participate — subdirectories
    (e.g. the analyzer's fixture groups under analyze/) belong to other
    tools' selftests."""

    def check(files: list[str]) -> list[Finding]:
        findings: list[Finding] = []
        for path in files:
            lint_file(path, findings)
        return findings

    return _run_fixture_selftest(fixture_dir, EXPECT_RE, check,
                                 tool="lint_invariants")


def main(argv: list[str]) -> int:
    if "--list-rules" in argv:
        for rule, summary in RULES.items():
            print(f"{rule:16} {summary}")
        return 0
    if "--selftest" in argv:
        i = argv.index("--selftest")
        if i + 1 >= len(argv):
            print("usage: lint_invariants.py --selftest DIR", file=sys.stderr)
            return 2
        return run_selftest(argv[i + 1])
    paths = [a for a in argv if not a.startswith("-")]
    return run_lint(paths or ["src", "tools/recon_cli.cc", "tests"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
