#!/usr/bin/env python3
"""Determinism & concurrency invariant linter for the recon codebase.

The repo guarantees bit-identical parallel vs. sequential batch selection and
bit-identical checkpoint-resume. The bug classes that break those guarantees
are statically detectable, and this linter rejects them at CI time:

  randomness       std::rand / srand / std::random_device. All randomness must
                   flow through util::Rng (seeded, counter-based) so runs are
                   reproducible and checkpointable.
  clock            Raw steady_clock/system_clock/high_resolution_clock::now()
                   or argless time(). Wall-clock reads must go through
                   util::WallTimer (and thus be visible as deadline code);
                   anything else risks timing leaking into selection.
  hash-order       Range-for / iterator loops over std::unordered_{map,set}
                   variables. Hash-order iteration leaks the hash seed and
                   insertion history into whatever the loop produces; extract
                   and sort keys first, or waive with a written reason.
  checkpoint-pair  A class declaring one side of a checkpoint field pair —
                   save_state/restore_state (Strategy state blobs) or
                   serialize/deserialize (record tokens) — must declare the
                   other, or resume silently loses state.
  format-pair      A file defining one side of a binary-format function pair
                   (write_<fmt>_binary_file / map_<fmt>_binary_file) must
                   define the other in the same translation unit, so a layout
                   change necessarily updates writer, reader, and checksum
                   together.
  guard            A class declaring a mutex member must annotate at least one
                   member RECON_GUARDED_BY(that mutex) (util/thread_annotations.h)
                   so clang -Wthread-safety has something to enforce, or waive
                   with a reason stating what the mutex is for.
  lockfree         compare_exchange_{strong,weak} outside a waiver. Hand-rolled
                   CAS loops must document their ownership protocol and
                   memory-order argument at the call site (and be exercised
                   under TSan); everything else should use util::Mutex or the
                   thread-pool primitives.
  durable-write    Raw std::rename / rename() calls. A bare rename publishes
                   a file with no fsync of either the contents or the parent
                   directory entry, so a crash can surface torn or lost data
                   at the destination. All durable publishes must go through
                   util::durable_rename (src/util/fs.cc), the one waived call
                   site.
  waiver           Malformed waivers: unknown rule name or empty reason.

Waiver grammar (one per flagged construct, on the flagged line or in the
comment block immediately above it; the reason may continue onto following
comment lines until the closing parenthesis):

    // lint:<rule>-ok(<non-empty reason>)

Usage:
    lint_invariants.py [PATH...]        lint .h/.cc files (default: src/)
    lint_invariants.py --selftest DIR   check fixture expectations in DIR
    lint_invariants.py --list-rules     print rule ids and summaries

Exit status: 0 clean, 1 findings (or selftest mismatch), 2 usage error.
Pure standard-library Python: no libclang dependency, so it runs identically
on dev boxes and CI. The matching is lexical (comments/strings stripped,
brace-matched class bodies), which the fixture selftest in
tests/lint_fixtures/ keeps honest.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

RULES = {
    "randomness": "banned randomness source (use util::Rng)",
    "clock": "raw wall-clock read (use util::WallTimer)",
    "hash-order": "iteration over unordered container (sort keys first)",
    "checkpoint-pair": "one-sided save_state/restore_state or "
                       "serialize/deserialize pair",
    "format-pair": "binary-format writer defined without its reader "
                   "(or vice versa) in the same file",
    "guard": "mutex member without a RECON_GUARDED_BY annotation",
    "lockfree": "hand-rolled CAS without a documented protocol",
    "durable-write": "raw rename() outside util::durable_rename "
                     "(publishes without fsync; torn on crash)",
    "waiver": "malformed waiver pragma",
}

# Files (repo-relative, '/'-separated suffix match) exempt from specific
# rules. Keep this list short and justified.
ALLOWLIST = {
    "randomness": (
        "src/util/rng.h",   # the sanctioned randomness wrapper itself
        "src/util/rng.cc",
    ),
    "clock": (
        "src/util/timer.h",   # the sanctioned WallTimer wrapper itself
        "src/solver/bnb.cc",  # deadline code (reads time via WallTimer today;
        "src/solver/fob.cc",  # allowlisted so deadline checks can evolve)
    ),
    "guard": (
        # The annotated Mutex wrapper necessarily owns a raw std::mutex.
        "src/util/thread_annotations.h",
    ),
}

BANNED = {
    "randomness": [
        (re.compile(r"\bstd\s*::\s*rand\b"), "std::rand"),
        (re.compile(r"(?<![\w:])srand\s*\("), "srand"),
        (re.compile(r"\brandom_device\b"), "std::random_device"),
    ],
    "clock": [
        (re.compile(r"\bsteady_clock\s*::\s*now\b"), "steady_clock::now"),
        (re.compile(r"\bsystem_clock\s*::\s*now\b"), "system_clock::now"),
        (
            re.compile(r"\bhigh_resolution_clock\s*::\s*now\b"),
            "high_resolution_clock::now",
        ),
        (
            re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
            "argless time()",
        ),
    ],
    # Lock-free algorithms are where determinism and memory-safety bugs hide
    # from every test that doesn't hit the exact interleaving. A CAS is only
    # acceptable next to a waiver stating the ownership protocol and
    # memory-order argument (which also flags the site for TSan coverage).
    "lockfree": [
        (
            re.compile(r"\bcompare_exchange_(?:strong|weak)\b"),
            "compare_exchange",
        ),
    ],
    # A rename publishes a file without any durability guarantee: neither the
    # file contents nor the directory entry are fsync'd, so a crash can leave
    # the destination pointing at lost or torn data. util::durable_rename
    # (src/util/fs.cc) wraps the fsync/rename/fsync-parent dance and is the
    # single sanctioned call site.
    "durable-write": [
        (re.compile(r"\bstd\s*::\s*rename\s*\("), "std::rename"),
        (re.compile(r"(?<![\w:.>])rename\s*\("), "raw rename()"),
    ],
}

# Field pairs the checkpoint-pair rule enforces inside a class body: a class
# writing state must also be able to read it back (and vice versa).
CHECKPOINT_PAIRS = (
    ("save_state", "restore_state"),  # Strategy/Rng opaque state blobs
    ("serialize", "deserialize"),     # checkpoint record tokens
)

# format-pair: a *definition* of write_<fmt>_binary_file or
# map_<fmt>_binary_file (parameter list followed by a body brace; plain
# declarations end in ';' and don't match). Both sides of a format must live
# in one translation unit so no layout change can touch only one of them.
FORMAT_FN_DEF_RE = re.compile(
    r"\b(write|map)_(\w+?)_binary_file\s*\([^;{]*\)\s*\{", re.S)

WAIVER_RE = re.compile(r"lint:([a-z-]+)-ok\(")
UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;()]*?>\s+(\w+)\s*[;({=]"
)
CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:RECON_\w+\s*(?:\([^)]*\))?\s*)?(\w+)[^;{()]*\{"
)
MUTEX_MEMBER_RE = re.compile(r"\b(?:std\s*::\s*mutex|util\s*::\s*Mutex|Mutex)\s+(\w+)\s*;")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def is_comment_line(raw_line: str) -> bool:
    s = raw_line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*") or s == ""


class Waivers:
    """Parses `// lint:<rule>-ok(reason)` pragmas and the lines they cover.

    A waiver covers its own line, every following comment line, and the first
    non-comment line after it (the flagged construct). Reasons may span
    multiple comment lines up to the closing parenthesis and must be
    non-empty; violations surface as `waiver` findings.
    """

    def __init__(self, path: str, raw_lines: list[str], findings: list[Finding]):
        # rule -> set of covered 1-based line numbers
        self.covered: dict[str, set[int]] = {r: set() for r in RULES}
        self.used: set[tuple[str, int]] = set()
        self._declared: list[tuple[str, int]] = []  # (rule, pragma line)
        for idx, raw in enumerate(raw_lines):
            for m in WAIVER_RE.finditer(raw):
                rule = m.group(1)
                if rule not in RULES or rule == "waiver":
                    findings.append(
                        Finding(path, idx + 1, "waiver",
                                f"unknown rule '{rule}' in waiver pragma"))
                    continue
                reason = self._extract_reason(raw_lines, idx, m.end())
                if reason is None or not reason.strip():
                    findings.append(
                        Finding(path, idx + 1, "waiver",
                                f"waiver for '{rule}' must carry a non-empty "
                                "reason: lint:" + rule + "-ok(<why>)"))
                    continue
                self._declared.append((rule, idx + 1))
                # Cover from the pragma line through the first non-comment line.
                j = idx
                self.covered[rule].add(j + 1)
                while j + 1 < len(raw_lines) and is_comment_line(raw_lines[j + 1]):
                    j += 1
                    self.covered[rule].add(j + 1)
                if j + 1 < len(raw_lines):
                    self.covered[rule].add(j + 2)

    @staticmethod
    def _extract_reason(raw_lines: list[str], idx: int, start: int) -> str | None:
        """Reason text from `start` up to the matching ')', possibly spanning
        following comment lines. Returns None if never closed."""
        depth = 1
        parts: list[str] = []
        line = raw_lines[idx]
        pos = start
        for _ in range(8):  # reasons longer than 8 lines are a smell anyway
            while pos < len(line):
                c = line[pos]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        parts.append(line[start:pos])
                        return " ".join(parts)
                pos += 1
            parts.append(line[start:])
            idx += 1
            if idx >= len(raw_lines) or not is_comment_line(raw_lines[idx]):
                return None
            line = raw_lines[idx]
            start = pos = line.find("//") + 2 if "//" in line else 0
        return None

    def waived(self, rule: str, line: int) -> bool:
        if line in self.covered.get(rule, ()):
            self.used.add((rule, line))
            return True
        return False


def class_bodies(code: str):
    """Yields (name, class_offset, body_offset, body_text) for each
    class/struct with a braced body in comment-stripped `code`. Nested bodies
    are yielded too."""
    for m in CLASS_RE.finditer(code):
        open_brace = m.end() - 1
        depth = 0
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    yield m.group(2), m.start(), open_brace + 1, code[open_brace + 1:i]
                    break


def line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


def lint_file(path: str, findings: list[Finding]) -> None:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()
    rel = os.path.normpath(path).replace(os.sep, "/")
    waivers = Waivers(rel, raw_lines, findings)

    def allowlisted(rule: str) -> bool:
        return any(rel.endswith(sfx) for sfx in ALLOWLIST.get(rule, ()))

    # --- randomness / clock bans -------------------------------------------
    for rule, patterns in BANNED.items():
        if allowlisted(rule):
            continue
        for lineno, cline in enumerate(code_lines, 1):
            for pat, label in patterns:
                if pat.search(cline) and not waivers.waived(rule, lineno):
                    findings.append(
                        Finding(rel, lineno, rule,
                                f"{label} is banned: {RULES[rule]}"))

    # --- hash-order iteration ----------------------------------------------
    unordered_names = {m.group(1) for m in UNORDERED_DECL_RE.finditer(code)}
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        range_for = re.compile(r"\bfor\s*\([^;)]*:\s*(?:\*?\s*)?(" + names + r")\s*\)")
        iter_for = re.compile(
            r"\bfor\s*\([^;)]*=\s*(" + names + r")\s*\.\s*c?begin\s*\(")
        for lineno, cline in enumerate(code_lines, 1):
            for pat in (range_for, iter_for):
                m = pat.search(cline)
                if m and not waivers.waived("hash-order", lineno):
                    findings.append(
                        Finding(rel, lineno, "hash-order",
                                f"loop over unordered container '{m.group(1)}': "
                                "iteration order depends on the hash seed and "
                                "insertion history; extract+sort keys, or waive "
                                "with lint:hash-order-ok(reason)"))

    # --- format-pair: binary writer/reader defined in the same file ---------
    defs: dict[str, dict[str, int]] = {}  # fmt stem -> side -> first def line
    for m in FORMAT_FN_DEF_RE.finditer(code):
        side, stem = m.group(1), m.group(2)
        defs.setdefault(stem, {}).setdefault(side, line_of(code, m.start()))
    for stem, sides in sorted(defs.items()):
        if len(sides) == 2:
            continue
        side, lineno = next(iter(sides.items()))
        other = "map" if side == "write" else "write"
        if not waivers.waived("format-pair", lineno):
            findings.append(
                Finding(rel, lineno, "format-pair",
                        f"{side}_{stem}_binary_file is defined here without "
                        f"{other}_{stem}_binary_file; keep the binary writer "
                        "and reader in one file so a layout change updates "
                        "both sides and the checksum together"))

    # --- class-body rules: checkpoint-pair and guard ------------------------
    seen_guard: set[int] = set()
    seen_pair: set[tuple[int, str]] = set()
    for name, start, body_start, body in class_bodies(code):
        cls_line = line_of(code, start)
        # checkpoint-pair: declaring one side of a serialization pair only.
        # (\bserialize does not match inside "deserialize": no word boundary.)
        for writer, reader in CHECKPOINT_PAIRS:
            has_writer = re.search(r"\b" + writer + r"\s*\(", body) is not None
            has_reader = re.search(r"\b" + reader + r"\s*\(", body) is not None
            if has_writer == has_reader or (cls_line, writer) in seen_pair:
                continue
            seen_pair.add((cls_line, writer))
            present = writer if has_writer else reader
            missing = reader if has_writer else writer
            if not waivers.waived("checkpoint-pair", cls_line):
                findings.append(
                    Finding(rel, cls_line, "checkpoint-pair",
                            f"class {name} declares {present} but not "
                            f"{missing}; checkpoint-resume would silently "
                            "lose or mis-restore this state"))
        # guard: every mutex member needs a GUARDED_BY(it) in the same body.
        if allowlisted("guard"):
            continue
        for mm in MUTEX_MEMBER_RE.finditer(body):
            mutex_name = mm.group(1)
            member_line = line_of(code, body_start + mm.start())
            if member_line in seen_guard:
                continue
            guarded = re.search(
                r"\bRECON(?:_PT)?_GUARDED_BY\s*\(\s*" + re.escape(mutex_name)
                + r"\s*\)", body)
            if guarded is None:
                seen_guard.add(member_line)
                if not waivers.waived("guard", member_line):
                    findings.append(
                        Finding(rel, member_line, "guard",
                                f"mutex member '{mutex_name}' in {name} guards "
                                "no annotated member; add RECON_GUARDED_BY("
                                f"{mutex_name}) to the guarded fields (see "
                                "util/thread_annotations.h) or waive with "
                                "lint:guard-ok(reason)"))


def collect_files(paths: list[str]) -> list[str]:
    out: list[str] = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        elif os.path.isdir(p):
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith((".h", ".cc", ".cpp", ".hpp")):
                        out.append(os.path.join(root, f))
        else:
            print(f"lint_invariants: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def run_lint(paths: list[str]) -> int:
    findings: list[Finding] = []
    files = collect_files(paths)
    for path in files:
        lint_file(path, findings)
    for f in sorted(findings, key=lambda x: (x.path, x.line)):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({len(files)} files clean)")
    return 0


EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([a-z-]+)")


def run_selftest(fixture_dir: str) -> int:
    """Every fixture declares its expected findings with `// lint-expect: rule`
    lines; `good_*` fixtures declare none and must lint clean. A fixture that
    over- or under-reports fails the selftest, so the linter cannot rot."""
    files = collect_files([fixture_dir])
    if not files:
        print(f"lint_invariants --selftest: no fixtures in {fixture_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        expected = sorted(EXPECT_RE.findall(raw))
        findings: list[Finding] = []
        lint_file(path, findings)
        actual = sorted(f.rule for f in findings)
        status = "ok"
        if actual != expected:
            failures += 1
            status = "FAIL"
        print(f"[{status}] {os.path.basename(path)}: expected {expected or '[]'}, "
              f"got {actual or '[]'}")
        if status == "FAIL":
            for f2 in findings:
                print(f"    {f2.path}:{f2.line}: [{f2.rule}] {f2.message}")
    if failures:
        print(f"lint_invariants --selftest: {failures}/{len(files)} fixtures "
              "FAILED", file=sys.stderr)
        return 1
    print(f"lint_invariants --selftest: all {len(files)} fixtures behave as "
          "expected")
    return 0


def main(argv: list[str]) -> int:
    if "--list-rules" in argv:
        for rule, summary in RULES.items():
            print(f"{rule:16} {summary}")
        return 0
    if "--selftest" in argv:
        i = argv.index("--selftest")
        if i + 1 >= len(argv):
            print("usage: lint_invariants.py --selftest DIR", file=sys.stderr)
            return 2
        return run_selftest(argv[i + 1])
    paths = [a for a in argv if not a.startswith("-")]
    return run_lint(paths or ["src"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
