#!/bin/sh
# End-to-end chaos sweep over the CLI: for every registered crash-injection
# site, arm it via RECON_CRASH_AT, run the supervised attack runner, let the
# supervisor fork a fresh worker that resumes from the last good checkpoint
# generation, and require the recovered trace file to be byte-identical to
# an uninterrupted reference run (after normalizing the wall-clock sel=
# fields). Also exercises:
#
#   * graph-binary publish kills (graph.* sites fire in `recon graph gen`,
#     which has no supervisor — the check is that a rerun simply succeeds
#     and the first kill never left a torn file behind),
#   * SIGTERM graceful stop: the supervised run is killed mid-flight, must
#     exit with the worker-stop status (75), and a follow-up supervised run
#     must complete from the snapshot with an identical trace.
#
# The crash_recovery_test gtest binary covers the same ground in-process;
# this script is the integration-level proof that the shipped CLI heals.
#
# Usage: tools/chaos_sweep.sh [build_dir]
set -eu

BUILD_DIR="${1:-build}"
RECON="$BUILD_DIR/tools/recon"
if [ ! -x "$RECON" ]; then
  echo "error: $RECON not built (cmake --build $BUILD_DIR --target recon_cli_bin)" >&2
  exit 1
fi

WORK="$(mktemp -d /tmp/recon_chaos_XXXXXX)"
trap 'rm -rf "$WORK"' EXIT INT TERM

ATTACK_FLAGS="--runs 1 --budget 40 --k 5 --seed 7"
SUPERVISE_FLAGS="--supervise --checkpoint-every 1 --backoff-base 0.01 --backoff-mult 1.5 --backoff-max 0.05"

# sel= is the one wall-clock field in a trace line; normalize it away so the
# comparison is over pure attack content.
normalize() {
  sed 's/sel=[^ ]*/sel=X/g' "$1"
}

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

"$RECON" generate --model ba --nodes 80 --out "$WORK/g.txt" --seed 3 >/dev/null

echo "== reference runs =="
"$RECON" attack --graph "$WORK/g.txt" $ATTACK_FLAGS \
  --traces "$WORK/ref_sync.traces" >/dev/null
"$RECON" attack --graph "$WORK/g.txt" $ATTACK_FLAGS --async --window 4 \
  --traces "$WORK/ref_async.traces" >/dev/null

sweep_one() {
  mode="$1" site="$2" nth="$3"
  case "$mode" in
    async) extra="--async --window 4"; ref="$WORK/ref_async.traces" ;;
    *)     extra="";                   ref="$WORK/ref_sync.traces" ;;
  esac
  dir="$WORK/sweep.$mode.$site.$nth"
  mkdir "$dir"
  # The injected kill exits the worker with status 42; the supervisor
  # restarts it with the arming cleared and must finish with status 0.
  if ! RECON_CRASH_AT="$site:$nth" "$RECON" attack --graph "$WORK/g.txt" \
      $ATTACK_FLAGS $extra $SUPERVISE_FLAGS --checkpoint "$dir/chain" \
      --traces "$dir/got.traces" >"$dir/log" 2>&1; then
    cat "$dir/log" >&2
    fail "$mode $site:$nth — supervised run exited nonzero"
  fi
  normalize "$ref" > "$dir/ref.norm"
  normalize "$dir/got.traces" > "$dir/got.norm"
  cmp -s "$dir/ref.norm" "$dir/got.norm" || \
    fail "$mode $site:$nth — recovered trace differs from reference"
  echo "ok: $mode $site:$nth"
}

echo "== supervised sweep: every site, sync and async =="
for site in $("$RECON" crashpoints); do
  case "$site" in
    graph.*) continue ;;  # no graph publish inside `attack`; swept below
    ckpt.*)  continue ;;  # chain.* supersedes single-file sites under --supervise
  esac
  sweep_one sync "$site" 1
  sweep_one async "$site" 1
done
# Deeper kills: the n-th execution, so recovery starts from a mid-run
# generation rather than round zero.
sweep_one sync chain.gen-published 3
sweep_one async durable.renamed 4

echo "== graph binary publish kills =="
for site in graph.tmp-torn graph.tmp-written; do
  dir="$WORK/graph.$site"
  mkdir "$dir"
  if RECON_CRASH_AT="$site:1" "$RECON" graph gen --model ba --nodes 200 --m 4 \
      --out "$dir/g.bin" --seed 5 >/dev/null 2>&1; then
    fail "graph $site — armed run was expected to die"
  fi
  # The kill must not have published a torn file; the rerun publishes
  # atomically and the result must verify.
  "$RECON" graph gen --model ba --nodes 200 --m 4 --out "$dir/g.bin" --seed 5 \
    >/dev/null
  "$RECON" graph info --in "$dir/g.bin" >/dev/null || \
    fail "graph $site — rerun left an unreadable file"
  echo "ok: graph $site"
done

echo "== SIGTERM graceful stop + heal =="
dir="$WORK/sigterm"
mkdir "$dir"
# Slow the worker down with a per-round retry fence so the TERM reliably
# lands mid-run: arm a far-off crash point? No — just use a bigger budget.
"$RECON" attack --graph "$WORK/g.txt" --runs 1 --budget 400 --k 5 --seed 7 \
  $SUPERVISE_FLAGS --checkpoint "$dir/chain" --traces "$dir/got.traces" \
  >"$dir/log" 2>&1 &
pid=$!
sleep 0.3
kill -TERM "$pid" 2>/dev/null || true
set +e
wait "$pid"
status=$?
set -e
if [ "$status" -ne 75 ] && [ "$status" -ne 0 ]; then
  cat "$dir/log" >&2
  fail "SIGTERM — expected graceful-stop status 75 (or 0 if it finished first), got $status"
fi
if [ "$status" -eq 75 ]; then
  # The forced snapshot must let a follow-up supervised run complete.
  "$RECON" attack --graph "$WORK/g.txt" --runs 1 --budget 400 --k 5 --seed 7 \
    $SUPERVISE_FLAGS --checkpoint "$dir/chain" --traces "$dir/got.traces" \
    >>"$dir/log" 2>&1 || { cat "$dir/log" >&2; fail "SIGTERM — resumed run failed"; }
fi
"$RECON" attack --graph "$WORK/g.txt" --runs 1 --budget 400 --k 5 --seed 7 \
  --traces "$dir/ref.traces" >/dev/null
normalize "$dir/ref.traces" > "$dir/ref.norm"
normalize "$dir/got.traces" > "$dir/got.norm"
cmp -s "$dir/ref.norm" "$dir/got.norm" || \
  fail "SIGTERM — healed trace differs from uninterrupted reference"
echo "ok: SIGTERM graceful stop"

echo "== torn trace recovery via metrics --recover =="
dir="$WORK/torn"
mkdir "$dir"
# Chop the reference file mid-final-line: strict read must fail, --recover
# must truncate the torn record and keep going.
bytes=$(wc -c < "$WORK/ref_sync.traces")
head -c "$((bytes - 7))" "$WORK/ref_sync.traces" > "$dir/torn.traces"
if "$RECON" metrics --traces "$dir/torn.traces" >/dev/null 2>&1; then
  fail "metrics accepted a torn trace file without --recover"
fi
"$RECON" metrics --traces "$dir/torn.traces" --recover >/dev/null 2>&1 || \
  fail "metrics --recover failed on a torn trace file"
echo "ok: torn trace recovery"

echo "chaos_sweep: all checks passed"
