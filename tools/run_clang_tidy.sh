#!/bin/sh
# Runs clang-tidy (config: .clang-tidy, warnings-as-errors) over the library,
# CLI, and bench sources using the compile_commands.json exported by CMake.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [JOBS]
#   BUILD_DIR  cmake build directory with compile_commands.json (default: build)
#   JOBS       parallel clang-tidy processes (default: nproc)
#
# Exits 0 with a notice when clang-tidy is not installed, so the tier-1 local
# flow works on boxes without LLVM; CI installs clang-tidy and treats any
# diagnostic as a hard failure (see the lint job in .github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="${2:-$(nproc 2>/dev/null || echo 2)}"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not found; skipping (install clang-tidy" \
       "or set CLANG_TIDY to gate locally — CI always runs it)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON" \
       "by default in this repo)" >&2
  exit 2
fi

echo "run_clang_tidy: $($TIDY --version | head -n 1) over $BUILD_DIR ($JOBS jobs)"

# Library + CLI + tools; one clang-tidy process per translation unit, fail if
# any emits a diagnostic (WarningsAsErrors: '*' in .clang-tidy makes each
# diagnostic a nonzero exit).
find src tools examples \( -name '*.cc' -o -name '*.cpp' \) -print0 |
  xargs -0 -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet

echo "run_clang_tidy: clean"
