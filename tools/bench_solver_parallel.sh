#!/bin/sh
# Captures the parallel solver-engine speedup numbers into
# BENCH_solver_parallel.json (google-benchmark JSON format).
#
# Runs the branch-tree subtree fan-out (BM_BranchTreeParallel) and the SAA
# scenario parallel_reduce (BM_SaaScenarioParallel) from bench/micro_solver,
# each at the sequential baseline (arg 0, no pool) and worker counts 1/2/8.
# The speedup claim is real_time(arg 0) / real_time(arg T); thread counts
# beyond the machine's core count saturate at ~core-count speedup, so read
# the JSON's per-run arg against nproc. Results are bit-identical across all
# configurations (enforced by solver_parallel_test), so only time moves.
#
# Usage: tools/bench_solver_parallel.sh [build_dir] [out.json]
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_solver_parallel.json}"
BIN="$BUILD_DIR/bench/micro_solver"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target micro_solver)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_BranchTreeParallel|BM_SaaScenarioParallel' \
  --benchmark_repetitions="${RECON_BENCH_REPS:-1}" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
