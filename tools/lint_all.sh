#!/bin/sh
# Runs every static-analysis gate exactly as CI's lint job does: the
# per-line invariant linter, the cross-TU program analyzer (all four
# passes), both fixture selftests, and — availability-gated — clang-tidy
# over an existing build tree's compile_commands.json. Run it from anywhere
# before pushing; it exits non-zero on the first failing gate. The clang
# -Wthread-safety build half of the lint job needs a clang configure and
# stays in CI (see .github/workflows/ci.yml).
#
# Usage: tools/lint_all.sh [--dot FILE] [BUILD_DIR]
#   --dot FILE   additionally export the whole-program lock-order graph
#                (Graphviz) to FILE, as CI does for its build artifact.
#   BUILD_DIR    build tree for the clang-tidy step (default: build);
#                skipped with a notice when the tree or clang-tidy is absent.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
dot_args=""
if [ "${1:-}" = "--dot" ]; then
  [ $# -ge 2 ] || {
    echo "usage: tools/lint_all.sh [--dot FILE] [BUILD_DIR]" >&2; exit 2; }
  dot_args="--dot $2"
  shift 2
fi
build_dir="${1:-build}"

echo "==> lint_invariants (src/ tools/recon_cli.cc tests/)"
python3 "$repo/tools/lint_invariants.py" \
  "$repo/src" "$repo/tools/recon_cli.cc" "$repo/tests"

echo "==> lint_invariants --selftest"
python3 "$repo/tools/lint_invariants.py" --selftest "$repo/tests/lint_fixtures"

echo "==> analyze_program (lockgraph ckpt-coverage hotpath crash-registry)"
# shellcheck disable=SC2086  # dot_args is deliberately word-split
python3 "$repo/tools/analyze_program.py" $dot_args \
  "$repo/src" "$repo/tools/recon_cli.cc" "$repo/tests"

echo "==> analyze_program --selftest"
python3 "$repo/tools/analyze_program.py" --selftest \
  "$repo/tests/lint_fixtures/analyze"

echo "==> analyze_program --selftest-json"
python3 "$repo/tools/analyze_program.py" --selftest-json \
  "$repo/tests/lint_fixtures/analyze"

if [ -f "$repo/$build_dir/compile_commands.json" ] || \
   [ -f "$build_dir/compile_commands.json" ]; then
  echo "==> clang-tidy ($build_dir)"
  # run_clang_tidy.sh itself skips with a notice when clang-tidy is absent.
  "$repo/tools/run_clang_tidy.sh" "$build_dir"
else
  echo "==> clang-tidy: skipped ($build_dir has no compile_commands.json;" \
       "configure with cmake first to gate locally — CI always runs it)"
fi

echo "lint_all: every static-analysis gate passed"
