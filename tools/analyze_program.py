#!/usr/bin/env python3
"""Cross-translation-unit program analyzer for the recon codebase.

tools/lint_invariants.py rejects per-line bug classes; this tool proves the
*whole-program* properties behind the repo's two guarantees — bit-identical
parallel selection and bit-identical crash/resume — that no single-file
lexical rule can see. Four passes, each a named rule with the shared
`// lint:<rule>-ok(reason)` waiver grammar (tools/lintlib/):

  lockgraph       Extracts the whole-program lock-acquisition-order graph
                  from util::MutexLock / std::lock_guard sites, RECON_ACQUIRE
                  / RECON_REQUIRES annotations, and cross-TU call edges. A
                  cycle is a potential deadlock: the finding carries the
                  witness path, and --dot exports the graph for docs. A
                  waiver on an acquisition site drops that site's edges
                  (state the protocol that makes the order safe).
  ckpt-coverage   For every class declaring BOTH sides of a checkpoint pair
                  (save_state/restore_state or serialize/deserialize — the
                  one-sided case is lint_invariants' checkpoint-pair rule),
                  every data member must be referenced by both sides (method
                  bodies are resolved cross-TU, and references through
                  same-class helpers two calls deep count). A member that is
                  derived or transient carries a waiver at its declaration
                  naming why. This statically catches the "resume silently
                  loses state" class fixed by hand in PRs 5 and 7.
  hotpath         Computes call-graph reachability from every parallel_for /
                  parallel_reduce body lambda and from the Gamma scoring
                  kernels, and bans blocking syscalls, file I/O, mutex
                  acquisition, logging, and raw clock reads inside the
                  reachable set. A waiver on the parallel call site exempts
                  that root (e.g. a coarse fan-out of whole attacks); a
                  waiver on the banned line exempts one site.
  crash-registry  Cross-checks crashpoint.cc's kSites table against every
                  RECON_CRASH_POINT arming site in the tree, both ways, plus
                  duplicate table entries — the registry honesty check at
                  analysis time instead of test time.
  waiver          Malformed waivers: unknown rule name or empty reason.

Usage:
    analyze_program.py [options] [PATH...]   default: src/ tools/recon_cli.cc
                                             tests/ (fixture trees pruned)
      --pass RULE       run only RULE (repeatable; default: all four)
      --json            machine-readable findings (stable-sorted)
      --dot FILE        write the lock-order graph as Graphviz DOT ('-' =
                        stdout); implies the lockgraph pass runs
      --list-rules      print rule ids and summaries
    analyze_program.py --selftest DIR        check fixture expectations
                                             (files and subdirectory groups,
                                             `// analyze-expect: rule`)
    analyze_program.py --selftest-json DIR   re-run --json under different
                                             PYTHONHASHSEED values and
                                             require byte-identical,
                                             round-trippable, sorted output

Exit status: 0 clean, 1 findings (or selftest mismatch), 2 usage error.
Pure standard-library Python; the matching is lexical (comments/strings
stripped, brace-matched bodies) and deliberately over-approximate — the
waiver grammar absorbs the rare false positive, and the fixture selftests
in tests/lint_fixtures/analyze/ keep every pass honest. See
docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from dataclasses import dataclass, field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lintlib import cpp  # noqa: E402
from lintlib.findings import (Finding, findings_to_json,  # noqa: E402
                              print_findings, sorted_findings)
from lintlib.fixtures import run_selftest as _run_fixture_selftest  # noqa: E402
from lintlib.source import SourceFile, collect_files  # noqa: E402
from lintlib.waivers import Waivers  # noqa: E402

RULES = {
    "lockgraph": "cycle in the whole-program lock-acquisition-order graph "
                 "(potential deadlock)",
    "ckpt-coverage": "checkpoint member not referenced by both sides of its "
                     "save/restore pair",
    "hotpath": "blocking or impure construct reachable from a parallel "
               "scoring hot path",
    "crash-registry": "crashpoint site table and RECON_CRASH_POINT arming "
                      "sites disagree",
    "waiver": "malformed waiver pragma",
}

DEFAULT_PATHS = ["src", "tools/recon_cli.cc", "tests"]

# --- hotpath configuration --------------------------------------------------

# Reachability roots besides parallel-body lambdas: the scoring kernels.
HOT_ROOT_CLASSES = ("GammaKernel",)
HOT_ROOT_FUNCTIONS = ("marginal_gain",)

# Support files whose *internals* the hotpath pass does not scan: the thread
# pool's own chunk driver (its error-slot MutexLock sits on the exception
# path every parallel body necessarily runs under) and the logging backend
# (RECON_LOG is flagged at the usage site, not inside LogLine/log_write).
HOT_FILE_ALLOWLIST = (
    "src/util/thread_pool.h",
    "src/util/thread_pool.cc",
    "src/util/log.h",
    "src/util/log.cc",
)
# Files where raw clock reads are sanctioned tree-wide (mirrors the
# lint_invariants clock allowlist): the WallTimer wrapper and deadline code.
HOT_CLOCK_ALLOWLIST = (
    "src/util/timer.h",
    "src/solver/bnb.cc",
    "src/solver/fob.cc",
)

HOT_BANNED = (
    (re.compile(r"\bMutexLock\s+\w+\s*\("), "util::MutexLock acquisition"),
    (re.compile(r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\b"),
     "std mutex acquisition"),
    (re.compile(r"\bRECON_LOG\b"), "logging (RECON_LOG)"),
    (re.compile(r"\bstd\s*::\s*[oi]?fstream\b|\b[oi]fstream\b"),
     "file stream I/O"),
    (re.compile(r"\b(?:fopen|fwrite|fread|fprintf|fscanf|fgets|fputs)\s*\("),
     "C file I/O"),
    (re.compile(r"\bsleep_for\b|\bsleep_until\b|"
                r"\b(?:nanosleep|usleep)\s*\(|(?<![\w:.>_])sleep\s*\("),
     "blocking sleep"),
    (re.compile(r"\b(?:fsync|fdatasync|fork|waitpid|system|popen)\s*\("),
     "blocking syscall"),
)
HOT_BANNED_CLOCK = (
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)"
                r"\s*::\s*now\b"), "raw clock read"),
    # The timer wrappers read the same clocks: constructing one inside a hot
    # body is timing instrumentation on the scoring path. Sanctioned
    # measurement sites (e.g. the shard-calibration stopwatch, whose reading
    # steers only layout and can never change a selected batch) carry a
    # lint:hotpath-ok line waiver instead of a blanket allowlist entry.
    (re.compile(r"\b(?:util\s*::\s*)?(?:WallTimer|ScopedTimer)\b"),
     "wall-timer construction (wraps a raw clock read)"),
)

# Macro calls the lexical call scanner cannot see through: occurrences of the
# macro name in a body behave as a call to the named backend function.
MACRO_CALLS = {
    "RECON_LOG": "log_write",
    "RECON_CRASH_POINT": "hit",
}

# --- crash-registry configuration -------------------------------------------

SITE_TABLE_RE = re.compile(r"\bkSites\b[^={;()]*=\s*\{")
SITE_LITERAL_RE = re.compile(r'"([^"\n]+)"')
CRASH_POINT_RE = re.compile(r'\bRECON_CRASH_POINT\s*\(\s*"([^"\n]+)"\s*\)')

# --- lock annotations --------------------------------------------------------

REQUIRES_RE = re.compile(r"\bRECON_REQUIRES\s*\(\s*([^()]+?)\s*\)")
ACQUIRE_RE = re.compile(r"\bRECON_ACQUIRE\s*\(\s*([^()]+?)\s*\)")


# ---------------------------------------------------------------------------
# Cross-TU program model


@dataclass
class AnalyzedFile:
    sf: SourceFile
    waivers: Waivers
    functions: list[cpp.FunctionDef] = field(default_factory=list)
    classes: list[cpp.ClassBody] = field(default_factory=list)


class Program:
    """The whole-program model every pass queries: parsed files, class
    bodies, function definitions with bodies, and a simple-name call index."""

    def __init__(self, files: list[str], findings: list[Finding]):
        self.files: list[AnalyzedFile] = []
        self.by_simple: dict[str, list[tuple[AnalyzedFile, cpp.FunctionDef]]] = {}
        self.mutex_members: dict[str, list[str]] = {}  # leaf -> [Class::leaf]
        self.class_index: dict[str, list[tuple[AnalyzedFile, cpp.ClassBody]]] = {}
        for path in files:
            sf = SourceFile(path)
            waivers = Waivers(sf.path, sf.raw_lines, findings,
                              rules=RULES)
            af = AnalyzedFile(sf, waivers)
            af.functions = cpp.function_defs(sf.code, sf.path, sf.line_of)
            for fn in af.functions:
                fn.calls = cpp.called_names(fn.body)
                for macro, target in MACRO_CALLS.items():
                    if macro in fn.body:
                        fn.calls.add(target)
                self.by_simple.setdefault(fn.name, []).append((af, fn))
            af.classes = list(cpp.class_bodies(sf.code))
            for cb in af.classes:
                self.class_index.setdefault(cb.name, []).append((af, cb))
                for mm in cpp.MUTEX_MEMBER_RE.finditer(cb.body):
                    qual = f"{cb.name}::{mm.group(1)}"
                    bucket = self.mutex_members.setdefault(mm.group(1), [])
                    if qual not in bucket:
                        bucket.append(qual)
            self.files.append(af)

    def functions_sorted(self):
        for af in self.files:
            for fn in af.functions:
                yield af, fn

    def defs_of(self, simple: str, prefer_path: str | None = None):
        """All definitions of a simple name, same-file ones first."""
        out = list(self.by_simple.get(simple, ()))
        if prefer_path is not None:
            out.sort(key=lambda t: (t[0].sf.path != prefer_path,))
        return out


# ---------------------------------------------------------------------------
# Pass 1: lockgraph


def _resolve_lock(prog: Program, af: AnalyzedFile, fn: cpp.FunctionDef,
                  expr: str, leaf: str,
                  local_mutexes: set[str]) -> str:
    """Maps an acquisition expression to a stable lock node name.

    Function-local mutexes (static or not) are scoped to their function so two
    unrelated locals sharing a name cannot be conflated into a false cycle."""
    if leaf in local_mutexes:
        return f"{fn.qname}::{leaf}"
    candidates = prog.mutex_members.get(leaf, [])
    if fn.cls is not None and f"{fn.cls}::{leaf}" in candidates:
        return f"{fn.cls}::{leaf}"
    # `obj.leaf` / `obj->leaf`: resolve obj's declared type in this body.
    m = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*" + re.escape(leaf) + r"\s*$",
                  expr)
    if m is not None:
        obj = m.group(1)
        tm = re.search(
            r"\b([A-Za-z_]\w*)\s*(?:<[^;<>]*>)?\s*[&*]?\s+\b" + re.escape(obj)
            + r"\b\s*[=;({\[]", fn.body)
        if tm is not None and f"{tm.group(1)}::{leaf}" in candidates:
            return f"{tm.group(1)}::{leaf}"
    if len(candidates) == 1:
        return candidates[0]
    if candidates:
        return sorted(candidates)[0]  # ambiguous: deterministic choice
    return f"?::{leaf}"


@dataclass
class LockEdge:
    src: str
    dst: str
    path: str
    line: int
    note: str


def _lock_model(prog: Program):
    """Per-function direct acquisitions and the transitive may-acquire sets,
    then the held-while-acquiring edge list."""
    direct: dict[int, list[tuple[str, int, int, int]]] = {}
    # fn id -> [(lock, offset, scope_end, line)]
    req_held: dict[int, list[str]] = {}
    fn_by_id: dict[int, tuple[AnalyzedFile, cpp.FunctionDef]] = {}

    for af, fn in prog.functions_sorted():
        fid = id(fn)
        fn_by_id[fid] = (af, fn)
        local_mutexes = {
            m.group(1) for m in cpp.LOCAL_MUTEX_RE.finditer(fn.body)}
        acqs = []
        for a in cpp.acquisitions(fn.body):
            line = af.sf.line_of(fn.body_start + a.offset)
            # A waived acquisition site contributes no edges: the waiver
            # states the protocol that makes its ordering safe.
            if af.waivers.waived("lockgraph", line):
                continue
            lock = _resolve_lock(prog, af, fn, a.expr, a.leaf, local_mutexes)
            acqs.append((lock, a.offset, a.scope_end, line))
        # RECON_ACQUIRE(m): the function itself acquires m for its full body.
        for m in ACQUIRE_RE.finditer(fn.annotations):
            expr = m.group(1).strip()
            leaf_m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
            if leaf_m is not None:
                lock = _resolve_lock(prog, af, fn, expr, leaf_m.group(1),
                                     local_mutexes)
                acqs.append((lock, 0, len(fn.body), fn.line))
        direct[fid] = acqs
        held = []
        for m in REQUIRES_RE.finditer(fn.annotations):
            expr = m.group(1).strip()
            leaf_m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
            if leaf_m is not None:
                held.append(_resolve_lock(prog, af, fn, expr,
                                          leaf_m.group(1), local_mutexes))
        req_held[fid] = held

    # Transitive may-acquire fixpoint over the cross-TU call graph.
    may: dict[int, set[str]] = {
        fid: {lock for lock, *_ in acqs} for fid, acqs in direct.items()}
    for _ in range(32):
        changed = False
        for fid, (af, fn) in fn_by_id.items():
            acc = set(may[fid])
            for callee in fn.calls:
                for _caf, cfn in prog.by_simple.get(callee, ()):
                    if id(cfn) != fid:
                        acc |= may.get(id(cfn), set())
            if acc != may[fid]:
                may[fid] = acc
                changed = True
        if not changed:
            break

    edges: dict[tuple[str, str], LockEdge] = {}

    def add_edge(src: str, dst: str, path: str, line: int, note: str):
        key = (src, dst)
        if key not in edges:
            edges[key] = LockEdge(src, dst, path, line, note)

    for af, fn in prog.functions_sorted():
        fid = id(fn)
        acqs = direct[fid]
        held_all = [(lock, 0, len(fn.body), fn.line) for lock in req_held[fid]]
        for lock, off, scope_end, line in acqs + held_all:
            span = fn.body[off:scope_end]
            # Direct nested acquisitions inside the held scope.
            for lock2, off2, _e2, line2 in acqs:
                if off < off2 < scope_end:
                    add_edge(lock, lock2, af.sf.path, line2,
                             f"acquired in {fn.qname} while holding {lock}")
            # Calls made while holding: anything the callee may acquire.
            callees = cpp.called_names(span)
            for macro, target in MACRO_CALLS.items():
                if macro in span:
                    callees.add(target)
            for callee in sorted(callees):
                for _caf, cfn in prog.by_simple.get(callee, ()):
                    if id(cfn) == fid:
                        continue
                    for lock2 in sorted(may.get(id(cfn), ())):
                        add_edge(lock, lock2, af.sf.path, line,
                                 f"call to {cfn.qname} from {fn.qname} "
                                 f"while holding {lock}")
    return edges


def _find_cycle(edges: dict[tuple[str, str], LockEdge]):
    """Smallest-witness cycle search: self-edges first, then BFS from each
    node in sorted order. Returns an ordered edge list or None."""
    adj: dict[str, list[str]] = {}
    for (src, dst) in sorted(edges):
        adj.setdefault(src, []).append(dst)
    for (src, dst) in sorted(edges):
        if src == dst:
            return [edges[(src, dst)]]
    for start in sorted(adj):
        # BFS back to `start`.
        prev: dict[str, str] = {}
        queue = [start]
        seen = {start}
        found = None
        while queue and found is None:
            node = queue.pop(0)
            for nxt in adj.get(node, ()):
                if nxt == start:
                    found = node
                    break
                if nxt not in seen:
                    seen.add(nxt)
                    prev[nxt] = node
                    queue.append(nxt)
        if found is not None:
            path = [found]
            while path[-1] != start:
                path.append(prev[path[-1]])
            path.reverse()  # start ... found
            path.append(start)
            return [edges[(path[i], path[i + 1])]
                    for i in range(len(path) - 1)]
    return None


def pass_lockgraph(prog: Program, findings: list[Finding]):
    """Returns the edge map (for --dot) and appends cycle findings."""
    edges = _lock_model(prog)
    remaining = dict(edges)
    while True:
        cycle = _find_cycle(remaining)
        if cycle is None:
            break
        locks = [e.src for e in cycle] + [cycle[-1].dst]
        witness = " -> ".join(locks)
        evidence = "; ".join(
            f"{e.src}->{e.dst} at {e.path}:{e.line} ({e.note})"
            for e in cycle)
        anchor = cycle[0]
        findings.append(Finding(
            anchor.path, anchor.line, "lockgraph",
            f"lock-order cycle {witness}: a thread holding one lock can "
            f"block on another held in the opposite order (deadlock). "
            f"Witness: {evidence}. Fix the acquisition order or waive the "
            "acquisition site with lint:lockgraph-ok(protocol)"))
        for e in cycle:
            remaining.pop((e.src, e.dst), None)
    return edges


def export_dot(edges: dict[tuple[str, str], LockEdge]) -> str:
    lines = ["digraph lock_order {", "  rankdir=LR;",
             "  node [shape=box, fontname=\"monospace\"];"]
    nodes = sorted({n for key in edges for n in key})
    for n in nodes:
        lines.append(f'  "{n}";')
    for key in sorted(edges):
        e = edges[key]
        lines.append(f'  "{e.src}" -> "{e.dst}" '
                     f'[label="{e.path}:{e.line}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Pass 2: ckpt-coverage


CKPT_PAIRS = (
    ("save_state", "restore_state"),
    ("serialize", "deserialize"),
)


def _method_body(prog: Program, af: AnalyzedFile, cb: cpp.ClassBody,
                 name: str) -> str | None:
    """Body of `cb.name::name`: inline definitions first, then out-of-line
    definitions anywhere in the program (same file preferred)."""
    for fn in af.functions:
        if fn.name == name and fn.cls == cb.name \
                and cb.body_start <= fn.body_start <= cb.body_end:
            return fn.body
    for other_af, fn in prog.defs_of(name, prefer_path=af.sf.path):
        if fn.cls == cb.name:
            return fn.body
    return None


def _method_closure(prog: Program, af: AnalyzedFile, cb: cpp.ClassBody,
                    body: str, depth: int = 2) -> str:
    """The side's body plus the bodies of same-class helpers it calls, up to
    `depth` levels — so `set_state_words(words)` counts as referencing
    `state_`."""
    parts = [body]
    frontier = [body]
    seen: set[str] = set()
    for _ in range(depth):
        nxt = []
        for text in frontier:
            for callee in sorted(cpp.called_names(text)):
                if callee in seen:
                    continue
                seen.add(callee)
                helper = _method_body(prog, af, cb, callee)
                if helper is not None:
                    parts.append(helper)
                    nxt.append(helper)
        frontier = nxt
    return "\n".join(parts)


def pass_ckpt_coverage(prog: Program, findings: list[Finding]) -> None:
    for af in prog.files:
        for cb in af.classes:
            for writer, reader in CKPT_PAIRS:
                has_w = re.search(r"\b" + writer + r"\s*\(", cb.body)
                has_r = re.search(r"\b" + reader + r"\s*\(", cb.body)
                if not (has_w and has_r):
                    continue
                wbody = _method_body(prog, af, cb, writer)
                rbody = _method_body(prog, af, cb, reader)
                if wbody is None or rbody is None:
                    continue  # declaration-only (interface): nothing to check
                wtext = _method_closure(prog, af, cb, wbody)
                rtext = _method_closure(prog, af, cb, rbody)
                for mf in cpp.member_fields(cb.body):
                    name_re = re.compile(r"\b" + re.escape(mf.name) + r"\b")
                    in_w = name_re.search(wtext) is not None
                    in_r = name_re.search(rtext) is not None
                    if in_w and in_r:
                        continue
                    line = af.sf.line_of(cb.body_start + mf.offset)
                    if af.waivers.waived("ckpt-coverage", line):
                        continue
                    if not in_w and not in_r:
                        missing = f"either {writer} or {reader}"
                    elif not in_w:
                        missing = writer
                    else:
                        missing = reader
                    findings.append(Finding(
                        af.sf.path, line, "ckpt-coverage",
                        f"member '{mf.name}' of {cb.name} is not referenced "
                        f"by {missing}: resume would silently lose or "
                        "default this state; reference it on both sides or "
                        "waive at the declaration naming why it is "
                        "derived/transient"))


# ---------------------------------------------------------------------------
# Pass 3: hotpath


PARALLEL_CALL_RE = re.compile(
    r"\bparallel_(for|reduce)\s*(?:<[^;()]*>)?\s*\(")


@dataclass
class HotRoot:
    label: str
    path: str
    line: int      # waiver anchor: the parallel call site or kernel def
    body: str
    af: AnalyzedFile
    fn_chain: tuple[str, ...]
    # File offset of the body's first character when known (inline lambda,
    # named lambda, kernel definition). Findings then anchor at the real
    # source line of the banned construct — a named-lambda body defined far
    # from its parallel_for call site would otherwise report call-site-
    # relative lines, putting waivers on the wrong statement.
    body_off: int | None = None


def _hot_roots(prog: Program) -> list[HotRoot]:
    roots: list[HotRoot] = []
    for af in prog.files:
        code = af.sf.code
        for m in PARALLEL_CALL_RE.finditer(code):
            kind = "parallel_" + m.group(1)
            open_p = m.end() - 1
            args = cpp.call_args(code, open_p)
            body_idx = 2 if m.group(1) == "for" else 3
            if len(args) <= body_idx:
                continue
            arg_text, arg_off = args[body_idx]
            line = af.sf.line_of(m.start())
            body = None
            body_off = None
            if arg_text.startswith("["):
                lb = cpp.lambda_body(code, code.index("[", arg_off))
                if lb is not None:
                    body, body_off = lb
            elif re.fullmatch(r"[A-Za-z_]\w*", arg_text):
                nl = cpp.named_lambda(code, arg_text)
                if nl is not None:
                    body, body_off = nl
                else:
                    for _oaf, fn in prog.defs_of(arg_text,
                                                 prefer_path=af.sf.path):
                        body = fn.body
                        # Offsets only make sense within this root's file.
                        if _oaf is af:
                            body_off = fn.body_start
                        break
            if body is None:
                continue
            roots.append(HotRoot(
                label=f"{kind} body at {af.sf.path}:{line}",
                path=af.sf.path, line=line, body=body, af=af,
                fn_chain=(f"{kind}@{af.sf.path}:{line}",),
                body_off=body_off))
        for fn in af.functions:
            if fn.cls in HOT_ROOT_CLASSES or \
                    (fn.cls is None and fn.name in HOT_ROOT_FUNCTIONS):
                roots.append(HotRoot(
                    label=f"scoring kernel {fn.qname} at "
                          f"{af.sf.path}:{fn.line}",
                    path=af.sf.path, line=fn.line, body=fn.body, af=af,
                    fn_chain=(fn.qname,), body_off=fn.body_start))
    roots.sort(key=lambda r: (r.path, r.line, r.label))
    return roots


def _scan_hot_body(af: AnalyzedFile, body: str, body_file_off: int | None,
                   chain: tuple[str, ...], root: HotRoot,
                   findings: list[Finding], reported: set) -> None:
    """Flags banned constructs in one body; offsets are file offsets when
    body_file_off is given (a FunctionDef or a root with a known body
    offset), else root-relative (the finding anchors at the root line)."""
    if any(af.sf.path.endswith(sfx) for sfx in HOT_FILE_ALLOWLIST):
        return
    banned = list(HOT_BANNED)
    if not any(af.sf.path.endswith(sfx) for sfx in HOT_CLOCK_ALLOWLIST):
        banned += list(HOT_BANNED_CLOCK)
    for pat, label in banned:
        for m in pat.finditer(body):
            if body_file_off is not None:
                line = af.sf.line_of(body_file_off + m.start())
            else:
                line = root.line + body.count("\n", 0, m.start())
            key = (af.sf.path, line, label)
            if key in reported:
                continue
            if af.waivers.waived("hotpath", line):
                reported.add(key)
                continue
            reported.add(key)
            via = " -> ".join(chain)
            findings.append(Finding(
                af.sf.path, line, "hotpath",
                f"{label} is reachable from {root.label} (via {via}): hot "
                "scoring paths must not block, perform I/O, take locks, "
                "log, or read raw clocks — move it off the hot path, or "
                "waive the banned line (cold/exception-only) or the "
                "parallel call site (coarse fan-out, not a scoring "
                "kernel) with lint:hotpath-ok(reason)"))


def pass_hotpath(prog: Program, findings: list[Finding]) -> None:
    reported: set = set()
    for root in _hot_roots(prog):
        if root.af.waivers.waived("hotpath", root.line):
            continue
        _scan_hot_body(root.af, root.body, root.body_off, root.fn_chain, root,
                       findings, reported)
        visited: set[int] = set()
        worklist: list[tuple[AnalyzedFile, cpp.FunctionDef,
                             tuple[str, ...]]] = []
        calls = cpp.called_names(root.body)
        for macro, target in MACRO_CALLS.items():
            if macro in root.body:
                calls.add(target)
        for callee in sorted(calls):
            for caf, cfn in prog.defs_of(callee, prefer_path=root.path):
                if id(cfn) not in visited:
                    visited.add(id(cfn))
                    worklist.append((caf, cfn,
                                     root.fn_chain + (cfn.qname,)))
        while worklist:
            caf, cfn, chain = worklist.pop(0)
            if caf.waivers.waived("hotpath", cfn.line):
                continue
            _scan_hot_body(caf, cfn.body, cfn.body_start, chain, root,
                           findings, reported)
            for callee in sorted(cfn.calls):
                for naf, nfn in prog.defs_of(callee, prefer_path=caf.sf.path):
                    if id(nfn) not in visited:
                        visited.add(id(nfn))
                        worklist.append((naf, nfn, chain + (nfn.qname,)))


# ---------------------------------------------------------------------------
# Pass 4: crash-registry


def pass_crash_registry(prog: Program, findings: list[Finding]) -> None:
    # (site -> [(path, line)]) for table entries and arming sites, from RAW
    # text: string literals are blanked in stripped code.
    table: dict[str, list[tuple[str, int]]] = {}
    armed: dict[str, list[tuple[str, int]]] = {}
    any_table = False
    for af in prog.files:
        text = af.sf.text
        for tm in SITE_TABLE_RE.finditer(text):
            open_b = text.index("{", tm.start())
            close_b = cpp.match_delim(text, open_b, "{", "}")
            if close_b < 0:
                continue
            any_table = True
            seen_here: set[str] = set()
            for lm in SITE_LITERAL_RE.finditer(text, open_b, close_b):
                site = lm.group(1)
                line = text.count("\n", 0, lm.start()) + 1
                if site in seen_here:
                    if not af.waivers.waived("crash-registry", line):
                        findings.append(Finding(
                            af.sf.path, line, "crash-registry",
                            f"duplicate kSites entry '{site}': the site "
                            "table must list each crash point exactly once"))
                    continue
                seen_here.add(site)
                table.setdefault(site, []).append((af.sf.path, line))
        for am in CRASH_POINT_RE.finditer(text):
            site = am.group(1)
            line = text.count("\n", 0, am.start()) + 1
            armed.setdefault(site, []).append((af.sf.path, line))
    if not any_table and not armed:
        return  # nothing crash-point related in the scanned set
    for site in sorted(armed):
        if site in table:
            continue
        for path, line in armed[site]:
            af = next(a for a in prog.files if a.sf.path == path)
            if af.waivers.waived("crash-registry", line):
                continue
            where = ("no kSites registry is in the scanned set"
                     if not any_table else
                     "it is missing from the kSites registry")
            findings.append(Finding(
                path, line, "crash-registry",
                f"RECON_CRASH_POINT site '{site}' is armed here but {where}:"
                " the chaos sweep enumerates the registry, so an unlisted "
                "site is never exercised — add it to the site table"))
    for site in sorted(table):
        if site in armed:
            continue
        for path, line in table[site]:
            af = next(a for a in prog.files if a.sf.path == path)
            if af.waivers.waived("crash-registry", line):
                continue
            findings.append(Finding(
                path, line, "crash-registry",
                f"registered crash site '{site}' has no RECON_CRASH_POINT "
                "arming site in the scanned tree: a stale registry entry "
                "makes the chaos sweep report coverage it does not have — "
                "remove the entry or restore the instrumentation"))


# ---------------------------------------------------------------------------
# Driver


PASSES = {
    "lockgraph": pass_lockgraph,
    "ckpt-coverage": pass_ckpt_coverage,
    "hotpath": pass_hotpath,
    "crash-registry": pass_crash_registry,
}


def analyze(files: list[str], passes: list[str]) -> tuple[list[Finding], dict]:
    findings: list[Finding] = []
    prog = Program(files, findings)
    lock_edges: dict = {}
    for name in passes:
        if name == "lockgraph":
            lock_edges = pass_lockgraph(prog, findings)
        else:
            PASSES[name](prog, findings)
    return findings, lock_edges


EXPECT_RE = re.compile(r"//\s*analyze-expect:\s*([a-z-]+)")


def run_selftest(fixture_dir: str) -> int:
    def check(files: list[str]) -> list[Finding]:
        findings, _ = analyze(files, list(PASSES))
        return sorted_findings(findings)

    return _run_fixture_selftest(fixture_dir, EXPECT_RE, check,
                                 tool="analyze_program", grouped=True)


def run_selftest_json(fixture_dir: str) -> int:
    """Runs --json over the fixture tree under two PYTHONHASHSEED values and
    requires byte-identical, parseable, stable-sorted output — the tooling
    obeys the same no-hash-order-leakage rule it enforces on the C++ tree."""
    import json
    outs = []
    for seed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--json", fixture_dir],
            capture_output=True, text=True, env=env)
        if proc.returncode not in (0, 1):
            print(f"analyze_program --selftest-json: child exited "
                  f"{proc.returncode}:\n{proc.stderr}", file=sys.stderr)
            return 1
        outs.append(proc.stdout)
    if outs[0] != outs[1]:
        print("analyze_program --selftest-json: output differs across "
              "PYTHONHASHSEED values (hash-order leakage)", file=sys.stderr)
        return 1
    doc = json.loads(outs[0])  # raises (fails) if not round-trippable
    keys = [(f["path"], f["line"], f["rule"], f["message"])
            for f in doc["findings"]]
    if keys != sorted(keys):
        print("analyze_program --selftest-json: findings are not "
              "stable-sorted", file=sys.stderr)
        return 1
    if not doc["findings"]:
        print("analyze_program --selftest-json: fixture tree produced no "
              "findings — the round-trip check needs real payloads",
              file=sys.stderr)
        return 1
    print(f"analyze_program --selftest-json: OK ({len(doc['findings'])} "
          "findings byte-identical across hash seeds, sorted, "
          "round-trippable)")
    return 0


def main(argv: list[str]) -> int:
    if "--list-rules" in argv:
        for rule, summary in RULES.items():
            print(f"{rule:16} {summary}")
        return 0
    for flag, runner in (("--selftest", run_selftest),
                         ("--selftest-json", run_selftest_json)):
        if flag in argv:
            i = argv.index(flag)
            if i + 1 >= len(argv):
                print(f"usage: analyze_program.py {flag} DIR",
                      file=sys.stderr)
                return 2
            return runner(argv[i + 1])

    passes: list[str] = []
    dot_path: str | None = None
    json_out = False
    paths: list[str] = []
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--pass":
            i += 1
            if i >= len(argv) or argv[i] not in PASSES:
                print("analyze_program: --pass needs one of "
                      + ", ".join(sorted(PASSES)), file=sys.stderr)
                return 2
            passes.append(argv[i])
        elif a == "--dot":
            i += 1
            if i >= len(argv):
                print("analyze_program: --dot needs a file path ('-' for "
                      "stdout)", file=sys.stderr)
                return 2
            dot_path = argv[i]
        elif a == "--json":
            json_out = True
        elif a.startswith("-"):
            print(f"analyze_program: unknown option {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
        i += 1
    if not passes:
        passes = sorted(PASSES)
    if dot_path is not None and "lockgraph" not in passes:
        passes.append("lockgraph")
    passes.sort()

    files = collect_files(paths or DEFAULT_PATHS, tool="analyze_program")
    findings, lock_edges = analyze(files, passes)
    if dot_path is not None:
        dot = export_dot(lock_edges)
        if dot_path == "-":
            sys.stdout.write(dot)
        else:
            with open(dot_path, "w", encoding="utf-8") as f:
                f.write(dot)
    if json_out:
        sys.stdout.write(findings_to_json(
            findings, tool="analyze_program", files_scanned=len(files),
            extra={"passes": passes}))
    else:
        print_findings(findings)
        if findings:
            print(f"analyze_program: {len(findings)} finding(s) in "
                  f"{len(files)} file(s)", file=sys.stderr)
        else:
            print(f"analyze_program: OK ({len(files)} files clean; passes: "
                  + ", ".join(passes) + ")")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
