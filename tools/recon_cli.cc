// The `recon` command-line tool: a thin dispatcher over cli::commands.
#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  return recon::cli::dispatch(argc, argv, std::cout, std::cerr);
}
