"""Fixture selftest harness shared by the linter and the analyzer.

Every fixture declares its expected findings with marker comment lines
(`// lint-expect: <rule>` for the invariant linter, `// analyze-expect:
<rule>` for the program analyzer); `good_*` fixtures declare none and must
come back clean. A fixture that over- or under-reports fails the selftest,
so neither tool's lexical matching can rot.

Two layouts are supported:

  * flat (lint_invariants): every .cc/.h directly in the fixture directory
    is one independent single-file fixture;
  * grouped (analyze_program): a top-level file is a single-file fixture,
    and a subdirectory is one multi-file fixture analyzed as a unit — that
    is how the cross-TU passes (a lock cycle spanning two files, an
    out-of-line restore_state missing a field) are pinned down.
"""

from __future__ import annotations

import os
import re
import sys

from .findings import Finding
from .source import CXX_SUFFIXES


def _fixture_files(directory: str) -> list[str]:
    return sorted(
        os.path.join(directory, f) for f in os.listdir(directory)
        if f.endswith(CXX_SUFFIXES))


def _walk_files(directory: str) -> list[str]:
    out = []
    for root, dirs, files in os.walk(directory):
        dirs.sort()
        out.extend(os.path.join(root, f) for f in sorted(files)
                   if f.endswith(CXX_SUFFIXES))
    return out


def fixture_groups(directory: str, grouped: bool) -> list[tuple[str, list[str]]]:
    """(display name, file list) per fixture. Flat layout: one file each.
    Grouped layout: subdirectories become multi-file fixtures."""
    groups: list[tuple[str, list[str]]] = []
    for f in _fixture_files(directory):
        groups.append((os.path.basename(f), [f]))
    if grouped:
        for entry in sorted(os.listdir(directory)):
            full = os.path.join(directory, entry)
            if os.path.isdir(full):
                files = _walk_files(full)
                if files:
                    groups.append((entry + "/", files))
    return groups


def expected_rules(files: list[str], expect_re: re.Pattern) -> list[str]:
    expected: list[str] = []
    for path in files:
        with open(path, encoding="utf-8") as f:
            expected.extend(expect_re.findall(f.read()))
    return sorted(expected)


def run_selftest(directory: str, expect_re: re.Pattern, check,
                 tool: str, grouped: bool = False) -> int:
    """Runs `check(files) -> list[Finding]` per fixture and compares the
    sorted rule multiset against the declared expectations. Returns an exit
    status (0 ok, 1 mismatches, 2 empty directory)."""
    groups = fixture_groups(directory, grouped)
    if not groups:
        print(f"{tool} --selftest: no fixtures in {directory}",
              file=sys.stderr)
        return 2
    failures = 0
    for name, files in groups:
        expected = expected_rules(files, expect_re)
        findings: list[Finding] = check(files)
        actual = sorted(f.rule for f in findings)
        status = "ok"
        if actual != expected:
            failures += 1
            status = "FAIL"
        print(f"[{status}] {name}: expected {expected or '[]'}, "
              f"got {actual or '[]'}")
        if status == "FAIL":
            for f2 in findings:
                print(f"    {f2.path}:{f2.line}: [{f2.rule}] {f2.message}")
    if failures:
        print(f"{tool} --selftest: {failures}/{len(groups)} fixtures "
              "FAILED", file=sys.stderr)
        return 1
    print(f"{tool} --selftest: all {len(groups)} fixtures behave as "
          "expected")
    return 0
