"""Source-text primitives: comment/string stripping, file collection.

The stripping pass blanks comments and string/char literals while preserving
line structure, so every downstream regex can assume it is matching code and
every offset still maps to the original line number. Waiver pragmas live in
comments, so waiver parsing reads the *raw* lines instead.
"""

from __future__ import annotations

import os
import sys

# C++ translation units the tools consider.
CXX_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

# Directory names pruned while walking a path argument. Fixture trees are
# deliberately full of findings and are exercised via --selftest, never as
# part of linting the real tree.
PRUNE_DIRS = ("lint_fixtures",)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def is_comment_line(raw_line: str) -> bool:
    s = raw_line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*") or s == ""


def line_of(code: str, offset: int) -> int:
    """1-based line number of `offset` in `code`."""
    return code.count("\n", 0, offset) + 1


def collect_files(paths: list[str], tool: str = "lintlib",
                  prune: tuple[str, ...] = PRUNE_DIRS) -> list[str]:
    """Expands files/directories into a sorted-walk list of C++ sources.

    Directories named in `prune` are skipped while walking (but a pruned name
    passed *explicitly* as a path argument is still honoured — that is how
    the fixture selftests target their own trees). Exits with status 2 on a
    nonexistent path, matching the historical CLI contract.
    """
    out: list[str] = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs if d not in prune)
                for f in sorted(files):
                    if f.endswith(CXX_SUFFIXES):
                        out.append(os.path.join(root, f))
        else:
            print(f"{tool}: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def rel_path(path: str) -> str:
    """Normalized, '/'-separated path used in findings and allowlists."""
    return os.path.normpath(path).replace(os.sep, "/")


class SourceFile:
    """One parsed translation unit: raw text, stripped code, both line views."""

    def __init__(self, path: str):
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.path = rel_path(path)
        self.raw_lines = self.text.splitlines()
        self.code = strip_comments_and_strings(self.text)
        self.code_lines = self.code.splitlines()

    def line_of(self, offset: int) -> int:
        return line_of(self.code, offset)
