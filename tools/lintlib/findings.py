"""The shared finding record and its reporting helpers.

Findings sort by (path, line, rule, message) everywhere — terminal output,
--json output, selftest comparisons — so no tool output can depend on dict
or set iteration order (the same hash-order discipline the linter enforces
on the C++ tree applies to the tooling itself).
"""

from __future__ import annotations

import json
from dataclasses import dataclass


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)


def sorted_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=Finding.sort_key)


def print_findings(findings: list[Finding]) -> None:
    for f in sorted_findings(findings):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")


def findings_to_json(findings: list[Finding], *, tool: str,
                     files_scanned: int, extra: dict | None = None) -> str:
    """Stable JSON document: sorted findings, sorted keys, no hash-order
    leakage (the analyze_json_stable test runs this under different
    PYTHONHASHSEED values and asserts byte-identical output)."""
    doc = {
        "tool": tool,
        "files_scanned": files_scanned,
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in sorted_findings(findings)
        ],
    }
    if extra:
        doc.update(extra)
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
