"""Shared machinery for the repo's zero-dependency static-analysis tools.

Two front ends sit on this package:

  tools/lint_invariants.py   per-file lexical invariant rules (randomness,
                             clock, hash-order, checkpoint-pair, format-pair,
                             guard, lockfree, durable-write)
  tools/analyze_program.py   cross-translation-unit passes (lockgraph,
                             ckpt-coverage, hotpath, crash-registry)

Both share one tokenizer (`source.strip_comments_and_strings`), one waiver
grammar (`waivers.Waivers`: `// lint:<rule>-ok(reason)`), one finding type
(`findings.Finding`) and one fixture-selftest harness (`fixtures`), so a
grammar or tokenizer fix lands in every tool at once. Pure standard-library
Python — no libclang — so results are identical on dev boxes and CI; the
fixture selftests in tests/lint_fixtures/ keep the lexical matching honest.
"""

from __future__ import annotations

__all__ = ["source", "findings", "waivers", "cpp", "fixtures"]
