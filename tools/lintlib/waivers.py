"""The `// lint:<rule>-ok(reason)` waiver grammar, shared by both tools.

A waiver covers its own line, every following comment line, and the first
non-comment line after it (the flagged construct). Reasons may span multiple
comment lines up to the closing parenthesis and must be non-empty;
violations surface as `waiver` findings.

Waiver *validation* (unknown rule name, empty reason) checks against the
union of every tool's rule names — a file carrying an analyzer waiver must
not trip the invariant linter's waiver rule, and vice versa — while
*coverage* is tracked only for the rules the running tool owns.
"""

from __future__ import annotations

import re

from .findings import Finding

WAIVER_RE = re.compile(r"lint:([a-z-]+)-ok\(")

# Every rule name any front end understands. A waiver naming a rule outside
# this union is a typo and is flagged; a waiver naming another tool's rule is
# simply not coverage for this tool's findings.
LINT_RULES = (
    "randomness", "clock", "hash-order", "checkpoint-pair", "format-pair",
    "guard", "lockfree", "durable-write", "waiver",
)
ANALYZE_RULES = (
    "lockgraph", "ckpt-coverage", "hotpath", "crash-registry", "waiver",
)
ALL_RULES = tuple(sorted(set(LINT_RULES) | set(ANALYZE_RULES)))


def _is_comment_line(raw_line: str) -> bool:
    s = raw_line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*") or s == ""


class Waivers:
    """Parses waiver pragmas in `raw_lines` and the lines they cover.

    `rules` is the running tool's rule set (an iterable of names; coverage is
    tracked per rule). `known_rules` defaults to the cross-tool union and
    controls which names are accepted as well-formed.
    """

    def __init__(self, path: str, raw_lines: list[str],
                 findings: list[Finding], rules=LINT_RULES,
                 known_rules=ALL_RULES):
        # rule -> set of covered 1-based line numbers
        self.covered: dict[str, set[int]] = {r: set() for r in rules}
        self.used: set[tuple[str, int]] = set()
        self._declared: list[tuple[str, int]] = []  # (rule, pragma line)
        for idx, raw in enumerate(raw_lines):
            for m in WAIVER_RE.finditer(raw):
                rule = m.group(1)
                if rule not in known_rules or rule == "waiver":
                    findings.append(
                        Finding(path, idx + 1, "waiver",
                                f"unknown rule '{rule}' in waiver pragma"))
                    continue
                reason = self._extract_reason(raw_lines, idx, m.end())
                if reason is None or not reason.strip():
                    findings.append(
                        Finding(path, idx + 1, "waiver",
                                f"waiver for '{rule}' must carry a non-empty "
                                "reason: lint:" + rule + "-ok(<why>)"))
                    continue
                self._declared.append((rule, idx + 1))
                if rule not in self.covered:
                    continue  # another tool's rule: valid, not ours to track
                # Cover from the pragma line through the first non-comment line.
                j = idx
                self.covered[rule].add(j + 1)
                while j + 1 < len(raw_lines) and _is_comment_line(raw_lines[j + 1]):
                    j += 1
                    self.covered[rule].add(j + 1)
                if j + 1 < len(raw_lines):
                    self.covered[rule].add(j + 2)

    @staticmethod
    def _extract_reason(raw_lines: list[str], idx: int, start: int) -> str | None:
        """Reason text from `start` up to the matching ')', possibly spanning
        following comment lines. Returns None if never closed."""
        depth = 1
        parts: list[str] = []
        line = raw_lines[idx]
        pos = start
        for _ in range(8):  # reasons longer than 8 lines are a smell anyway
            while pos < len(line):
                c = line[pos]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        parts.append(line[start:pos])
                        return " ".join(parts)
                pos += 1
            parts.append(line[start:])
            idx += 1
            if idx >= len(raw_lines) or not _is_comment_line(raw_lines[idx]):
                return None
            line = raw_lines[idx]
            start = pos = line.find("//") + 2 if "//" in line else 0
        return None

    def waived(self, rule: str, line: int) -> bool:
        if line in self.covered.get(rule, ()):
            self.used.add((rule, line))
            return True
        return False
