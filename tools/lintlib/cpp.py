"""Lexical C++ model shared by the invariant linter and the program analyzer.

Everything here operates on comment/string-stripped code (source.py), with
brace/paren matching instead of a real parser. That is deliberate: the tools
must run identically everywhere with zero dependencies, and the fixture
selftests pin the matching behaviour. The model extracts:

  * class/struct bodies (brace-matched, nested bodies included),
  * per-instance data-member declarations inside a class body,
  * function definitions (free, qualified `Cls::fn`, and inline methods)
    with their brace-matched bodies,
  * call-site names inside a body (for the cross-TU call graph),
  * lock-acquisition sites (util::MutexLock, std::lock_guard/unique_lock/
    scoped_lock) and the brace scope each one covers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:RECON_\w+\s*(?:\([^)]*\))?\s*)?(\w+)[^;{()]*\{"
)

# Names that look like `name(...)` but never introduce a function definition.
CONTROL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "new", "delete", "throw", "static_assert", "case", "using",
    "alignas", "noexcept", "requires", "assert", "defined", "co_await",
    "co_return", "co_yield", "else", "do", "operator",
})

# Method names so pervasive on std containers/smart pointers that a call
# edge on the bare name would connect nearly everything to nearly
# everything. Calls to these never create cross-TU call-graph edges; a
# project function deliberately named like one of these must be renamed to
# participate in the analysis.
CALL_NAME_STOPLIST = frozenset({
    "begin", "end", "cbegin", "cend", "rbegin", "rend", "size", "empty",
    "clear", "reserve", "resize", "push_back", "emplace_back", "emplace",
    "pop_back", "pop_front", "push_front", "front", "back", "at", "find",
    "count", "contains", "insert", "erase", "data", "c_str", "str", "get",
    "reset", "release", "swap", "first", "second", "value", "has_value",
    "load", "store", "exchange", "fetch_add", "fetch_sub", "wait",
    "notify_one", "notify_all", "lock", "unlock", "try_lock", "native",
    "min", "max", "abs", "move", "forward", "make_unique", "make_shared",
    "make_pair", "make_tuple", "to_string", "substr", "append", "assign",
    "compare", "length", "rfind", "capacity", "shrink_to_fit", "fill",
    "top", "pop", "push", "test", "set", "tie", "good", "bad", "fail",
    "eof", "what", "joinable", "join", "detach", "void", "bool", "int",
    "double", "float", "char", "unsigned", "long", "short", "auto",
})


def match_delim(code: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    """Index of the delimiter matching code[open_idx], or -1 if unbalanced."""
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


@dataclass
class ClassBody:
    name: str
    start: int        # offset of the class keyword
    body_start: int   # offset just past the opening brace
    body_end: int     # offset of the closing brace
    body: str


def class_bodies(code: str):
    """Yields a ClassBody for each class/struct with a braced body in
    comment-stripped `code`. Nested bodies are yielded too."""
    for m in CLASS_RE.finditer(code):
        open_brace = m.end() - 1
        close = match_delim(code, open_brace, "{", "}")
        if close >= 0:
            yield ClassBody(m.group(2), m.start(), open_brace + 1, close,
                            code[open_brace + 1:close])


# ---------------------------------------------------------------------------
# Data members


_ACCESS_RE = re.compile(r"^\s*(?:public|private|protected)\s*:")
_SKIP_STMT_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static\b|constexpr\b|enum\b|"
    r"namespace\b|template\b|class\b|struct\b|union\b|~)")
_TRAILING_ATTR_RE = re.compile(r"RECON_\w+\s*(?:\([^()]*\))?\s*$")
_DECLARATOR_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*$")


@dataclass
class MemberField:
    name: str
    offset: int  # offset of the declarator name within the class body


def member_fields(body: str) -> list[MemberField]:
    """Per-instance data members declared at the top level of a class body.

    Lexical: splits the body into top-level statements (inline method bodies
    and nested classes are skipped wholesale), drops anything that looks like
    a function declaration, an alias, or static/constexpr state, and keeps
    the declarator name of what remains.
    """
    fields: list[MemberField] = []
    stmt_start = 0
    i, n = 0, len(body)
    while i < n:
        c = body[i]
        if c in "{([":
            close = match_delim(body, i, c, {"{": "}", "(": ")", "[": "]"}[c])
            if close < 0:
                break
            if c == "{":
                # An inline body `void f() { ... }` usually has no trailing
                # ';': treat the close brace as a statement boundary unless a
                # brace-init `= {...};` or `x{...};` follows with one.
                j = close + 1
                while j < n and body[j] in " \t\n":
                    j += 1
                if j < n and body[j] == ";":
                    _flush_member(body, stmt_start, j, fields)
                    i = stmt_start = j + 1
                    continue
                i = stmt_start = close + 1
                continue
            i = close + 1
            continue
        if c == ";":
            _flush_member(body, stmt_start, i, fields)
            stmt_start = i + 1
        i += 1
    return fields


def _flush_member(body: str, start: int, end: int,
                  fields: list[MemberField]) -> None:
    stmt = body[start:end]
    # Strip access-specifier labels that precede the statement.
    while True:
        m = _ACCESS_RE.match(stmt)
        if m is None:
            break
        start += m.end()
        stmt = body[start:end]
    if not stmt.strip() or _SKIP_STMT_RE.match(stmt):
        return
    # `bool operator==(...) const = default;` would otherwise be cut at the
    # '=' inside 'operator==' and mis-read as a field named 'operator'.
    if re.search(r"\boperator\b", stmt):
        return
    # Cut at the initializer if any; what precedes is the declaration proper.
    decl = stmt
    for cut in ("=",):
        idx = decl.find(cut)
        if idx >= 0:
            decl = decl[:idx]
    # Brace/paren initializers were skipped by the statement walker, so a
    # surviving '(' means a function declaration.
    if "(" in decl:
        return
    # Drop trailing RECON_* attribute macros (e.g. RECON_GUARDED_BY(mu)).
    while True:
        m = _TRAILING_ATTR_RE.search(decl.rstrip())
        if m is None:
            break
        decl = decl.rstrip()[:m.start()]
    m = _DECLARATOR_RE.search(decl.rstrip())
    if m is None:
        return
    name = m.group(1)
    # A lone identifier is a label fragment or macro, not `Type name`.
    if decl.rstrip().rstrip("[] \t\n") == name or name in CONTROL_KEYWORDS:
        if decl.strip() == name:
            return
    fields.append(MemberField(name, start + decl.find(name)))


# ---------------------------------------------------------------------------
# Function definitions


FN_NAME_RE = re.compile(
    r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
_QUALIFIER_WORDS = frozenset({
    "const", "noexcept", "override", "final", "mutable", "throw",
    "requires", "try",
})


@dataclass
class FunctionDef:
    qname: str          # e.g. "PmArest::save_state" or "run_attack"
    name: str           # simple name: "save_state"
    cls: str | None     # class name from the qualifier or enclosing body
    path: str
    line: int           # 1-based line of the name
    body_start: int     # offset just past the opening brace (file offsets)
    body_end: int       # offset of the closing brace
    body: str
    annotations: str    # qualifier text between ')' and '{' (RECON_* etc.)
    calls: set[str] = field(default_factory=set)


def function_defs(code: str, path: str, line_of) -> list[FunctionDef]:
    """Finds function definitions (name + brace-matched body) in stripped
    code: free functions, out-of-line `Cls::fn` definitions, constructors
    with member-init lists, and inline methods (class association is filled
    in from enclosing class bodies)."""
    classes = list(class_bodies(code))
    defs: list[FunctionDef] = []
    for m in FN_NAME_RE.finditer(code):
        name = m.group(1)
        simple = name.split("::")[-1].strip().lstrip("~")
        if simple in CONTROL_KEYWORDS or not simple:
            continue
        open_p = m.end() - 1
        close_p = match_delim(code, open_p, "(", ")")
        if close_p < 0:
            continue
        body_open = _find_body_brace(code, close_p + 1)
        if body_open is None:
            continue
        body_close = match_delim(code, body_open, "{", "}")
        if body_close < 0:
            continue
        cls = None
        if "::" in name:
            parts = [p.strip() for p in name.split("::")]
            cls = parts[-2] if len(parts) >= 2 else None
        else:
            # Innermost class body containing the definition, if any.
            best = None
            for cb in classes:
                if cb.body_start <= m.start() < cb.body_end:
                    if best is None or cb.body_start > best.body_start:
                        best = cb
            if best is not None:
                cls = best.name
        qname = f"{cls}::{simple}" if cls else simple
        defs.append(FunctionDef(
            qname=qname, name=simple, cls=cls, path=path,
            line=line_of(m.start()),
            body_start=body_open + 1, body_end=body_close,
            body=code[body_open + 1:body_close],
            annotations=code[close_p + 1:body_open]))
    return defs


def _find_body_brace(code: str, i: int) -> int | None:
    """From just past a parameter list's ')', walks qualifier tokens
    (const/noexcept/override/RECON_* attributes/trailing return/member-init
    lists) to the definition's opening '{'. Returns None for declarations
    and call expressions."""
    n = len(code)
    while i < n:
        c = code[i]
        if c in " \t\n":
            i += 1
            continue
        if c == "{":
            return i
        if c in ";,)]}":
            return None
        if c == ":":
            if i + 1 < n and code[i + 1] == ":":
                return None
            # Constructor member-init list: `: a_(x), b_{y} {`.
            i += 1
            while i < n:
                if code[i] in " \t\n,":
                    i += 1
                    continue
                if code[i] == "{":
                    # Brace could open an init `b_{y}` (identifier directly
                    # before it) or the body. An init brace is always
                    # preceded by an identifier character.
                    k = i - 1
                    while k >= 0 and code[k] in " \t\n":
                        k -= 1
                    if k >= 0 and (code[k].isalnum() or code[k] in "_>)"):
                        prev = code[max(0, k - 16):k + 1]
                        if not prev.rstrip().endswith(")"):
                            close = match_delim(code, i, "{", "}")
                            if close < 0:
                                return None
                            i = close + 1
                            continue
                    return i
                if code[i] == "(":
                    close = match_delim(code, i, "(", ")")
                    if close < 0:
                        return None
                    i = close + 1
                    continue
                if code[i].isalnum() or code[i] in "_:<>":
                    i += 1
                    continue
                return None
            return None
        if c == "-" and i + 1 < n and code[i + 1] == ">":
            # Trailing return type: skip tokens until the body brace.
            i += 2
            while i < n and code[i] not in "{;":
                i += 1
            continue
        if c == "(":  # noexcept(...), RECON_*(...)
            close = match_delim(code, i, "(", ")")
            if close < 0:
                return None
            i = close + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (code[j].isalnum() or code[j] == "_"):
                j += 1
            word = code[i:j]
            if word in _QUALIFIER_WORDS or word.startswith("RECON_"):
                i = j
                continue
            return None
        if c in "=&":
            # `= default` / `= delete` / ref-qualifiers: not a braced def.
            return None
        return None
    return None


# ---------------------------------------------------------------------------
# Call sites


CALL_RE = re.compile(r"(?<![\w:])([A-Za-z_]\w*)\s*\(")


def called_names(body: str) -> set[str]:
    """Simple names that appear as `name(` in a body, minus control keywords
    and the std-container stoplist. Method calls (`x.name(`, `p->name(`)
    are included; qualified tails (`ns::name(`) are captured by a separate
    pass below."""
    out: set[str] = set()
    for m in CALL_RE.finditer(body):
        name = m.group(1)
        if name in CONTROL_KEYWORDS or name in CALL_NAME_STOPLIST:
            continue
        out.add(name)
    for m in re.finditer(r"::\s*([A-Za-z_]\w*)\s*\(", body):
        name = m.group(1)
        if name in CONTROL_KEYWORDS or name in CALL_NAME_STOPLIST:
            continue
        out.add(name)
    return out


# ---------------------------------------------------------------------------
# Lock acquisitions


ACQUIRE_RES = (
    re.compile(r"\bMutexLock\s+\w+\s*\(\s*([^();]+?)\s*\)"),
    re.compile(
        r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\s*"
        r"<[^>;]*>\s+\w+\s*\(\s*([^();]+?)\s*\)"),
)
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:std\s*::\s*mutex|util\s*::\s*Mutex|Mutex)\s+(\w+)\s*;")
LOCAL_MUTEX_RE = re.compile(
    r"\b(?:static\s+)?(?:std\s*::\s*mutex|util\s*::\s*Mutex|Mutex)\s+(\w+)\s*;")


@dataclass
class Acquisition:
    expr: str      # the constructor argument, e.g. "r.mutex" or "mu_"
    leaf: str      # last identifier of the expression
    offset: int    # offset within the scanned body
    scope_end: int  # end offset of the enclosing brace scope


def acquisitions(body: str) -> list[Acquisition]:
    out: list[Acquisition] = []
    pairs = brace_pairs(body)
    for pat in ACQUIRE_RES:
        for m in pat.finditer(body):
            expr = m.group(1).strip()
            leaf_m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
            if leaf_m is None:
                continue
            out.append(Acquisition(
                expr=expr, leaf=leaf_m.group(1), offset=m.start(),
                scope_end=enclosing_scope_end(pairs, m.start(), len(body))))
    out.sort(key=lambda a: a.offset)
    return out


def brace_pairs(body: str) -> list[tuple[int, int]]:
    pairs: list[tuple[int, int]] = []
    stack: list[int] = []
    for i, c in enumerate(body):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def enclosing_scope_end(pairs: list[tuple[int, int]], pos: int,
                        default: int) -> int:
    best = default
    best_span = None
    for open_i, close_i in pairs:
        if open_i < pos < close_i:
            span = close_i - open_i
            if best_span is None or span < best_span:
                best, best_span = close_i, span
    return best


# ---------------------------------------------------------------------------
# Call-argument and lambda helpers (parallel-root extraction)


def call_args(code: str, open_paren: int) -> list[tuple[str, int]]:
    """Splits the argument list opening at `open_paren` into (text, offset)
    pairs at top-level commas."""
    close = match_delim(code, open_paren, "(", ")")
    if close < 0:
        return []
    args: list[tuple[str, int]] = []
    depth = 0
    start = open_paren + 1
    i = start
    while i <= close:
        c = code[i]
        if c in "([{<":
            if c != "<" or _is_template_open(code, i):
                depth += 1
        elif c in ")]}>":
            if c != ">" or _is_template_close(code, i):
                depth -= 1
        if (c == "," and depth == 0) or i == close:
            args.append((code[start:i].strip(), start))
            start = i + 1
        i += 1
    return args


def _is_template_open(code: str, i: int) -> bool:
    # Good enough: treat '<' as nesting only when directly after an
    # identifier (template argument list), so comparisons don't unbalance.
    return i > 0 and (code[i - 1].isalnum() or code[i - 1] == "_")


def _is_template_close(code: str, i: int) -> bool:
    return i > 0 and code[i - 1] != "-"  # exclude '->'


LAMBDA_INTRO_RE = re.compile(r"\[[^\[\]]*\]")


def lambda_body(code: str, lambda_start: int) -> tuple[str, int] | None:
    """Given the offset of a lambda's '[', returns (body, body_offset)."""
    m = LAMBDA_INTRO_RE.match(code, lambda_start)
    if m is None:
        return None
    i = m.end()
    n = len(code)
    while i < n and code[i] in " \t\n":
        i += 1
    if i < n and code[i] == "(":
        close = match_delim(code, i, "(", ")")
        if close < 0:
            return None
        i = close + 1
    while i < n and code[i] != "{":
        if code[i] == ";":
            return None
        i += 1
    if i >= n:
        return None
    close = match_delim(code, i, "{", "}")
    if close < 0:
        return None
    return code[i + 1:close], i + 1


def named_lambda(code: str, name: str) -> tuple[str, int] | None:
    """Finds `auto name = [...](...) {...}` and returns its body."""
    m = re.search(r"\b" + re.escape(name) + r"\s*=\s*\[", code)
    if m is None:
        return None
    return lambda_body(code, m.end() - 1)
