#!/bin/sh
# Captures the parallel batch-selection speedup numbers into
# BENCH_parallel_select.json (google-benchmark JSON format).
#
# Runs the sequential baseline (BM_BatchSelectCollapsed at n=5000, k=15) and
# the pool-backed variants (BM_BatchSelectParallelLazy at 1/2/4/8 threads,
# plus the cache+pool full-attack composition) from bench/micro_core. The
# speedup claim is real_time(sequential) / real_time(parallel, T threads);
# thread counts beyond the machine's core count saturate at ~core-count
# speedup, so read the JSON's per-run "threads" arg against nproc.
#
# Usage: tools/bench_parallel_select.sh [build_dir] [out.json]
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_parallel_select.json}"
BIN="$BUILD_DIR/bench/micro_core"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target micro_core)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_BatchSelectCollapsed/5000/15|BM_BatchSelectParallelLazy|BM_FullAttackCachedPool' \
  --benchmark_repetitions="${RECON_BENCH_REPS:-1}" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
