// Fig. 4: benefit Q as a function of friend requests sent K, for M-AReST vs
// PM-AReST with k in {5, 10, 15}, on each of the four SNAP stand-ins
// (subfigures a–d), plus the retries-allowed Twitter variant (subfigure e,
// --retries or printed after the main sweep by default).
//
// The paper's qualitative claims this bench reproduces:
//  * M-AReST (fully sequential) upper-bounds the batch curves;
//  * the gap grows with k but stays small;
//  * with retries allowed the gap all but vanishes (Fig. 4e).
#include <memory>

#include "bench/bench_common.h"
#include "util/stats.h"

namespace {

using namespace recon;

std::vector<double> mean_curve(const core::MonteCarloResult& mc) {
  util::SeriesStat stat;
  for (const auto& t : mc.traces) stat.add(t.benefit_by_request());
  return stat.means();
}

void run_network(const graph::Dataset& ds, const bench::BenchConfig& cfg,
                 bool retries, util::Table* table) {
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
  const double budget = bench::fig4_budget(ds);

  struct Series {
    std::string label;
    std::vector<double> curve;
  };
  std::vector<Series> series;
  series.push_back(
      {retries ? "M-AReST(retry)" : "M-AReST",
       mean_curve(core::run_monte_carlo(problem, bench::m_arest_factory(retries),
                                        cfg.runs, budget, cfg.seed))});
  for (int k : {5, 10, 15}) {
    series.push_back(
        {"PM-AReST(k=" + std::to_string(k) + (retries ? ",retry)" : ")"),
         mean_curve(core::run_monte_carlo(problem, bench::pm_arest_factory(k, retries),
                                          cfg.runs, budget, cfg.seed))});
  }

  // Print Q at evenly spaced budget checkpoints (the figure's x-axis).
  const std::size_t max_len = static_cast<std::size_t>(budget);
  for (const auto& s : series) {
    std::vector<std::string> row{ds.name + (retries ? " +retry" : ""), s.label};
    for (int frac = 1; frac <= 5; ++frac) {
      const std::size_t idx =
          std::min(s.curve.size(), max_len * frac / 5) - 1;
      row.push_back(idx < s.curve.size() ? util::format_fixed(s.curve[idx], 1) : "-");
    }
    table->add_row(std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto cfg = bench::BenchConfig::from_args(args);
  const bool only_retries = args.has("retries");

  util::Table table({"Network", "Strategy", "Q@20%K", "Q@40%K", "Q@60%K", "Q@80%K",
                     "Q@K"});
  if (!only_retries) {
    for (graph::DatasetId id : graph::snap_dataset_ids()) {
      run_network(graph::make_dataset(id, cfg.scale, cfg.seed), cfg, false, &table);
    }
  }
  // Fig. 4e: Twitter with retries allowed.
  run_network(graph::make_dataset(graph::DatasetId::kTwitter, cfg.scale, cfg.seed),
              cfg, true, &table);
  bench::emit(table, cfg,
              "Fig. 4: benefit Q vs. friend requests K (a-d no retries; e retries)");
  return 0;
}
