// Beyond the paper: the benefit-vs-time frontier of rolling-window attacks.
//
// Table IV contrasts two synchronization disciplines — fully sequential
// (M-AReST) and synchronous batches (PM-AReST). The event-driven rolling
// attacker (core/async_attack.h) spans the whole frontier with one knob, the
// outstanding-request window W: it matches sequential benefit at W = 1 and
// batch-like throughput at W = k. At equal parallelism the benefit matches
// the synchronous batch (average in-flight staleness is comparable), but
// under stochastic delays the barrier makes the synchronous batch wait for
// its slowest response every round — the rolling window never idles.
//
// Columns: mean benefit, makespan under exponential 5-minute response
// delays, and seconds-per-benefit (the RT-RRS currency of Table IV).
#include "bench/bench_common.h"
#include "core/async_attack.h"
#include "metrics/rrs.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace recon;
  const auto cfg = bench::BenchConfig::from_args(util::Args(argc, argv));

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kEnronEmail, cfg.scale, cfg.seed);
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
  const double budget = bench::fig4_budget(ds);
  const double delay = 300.0;

  util::Table table(
      {"Discipline", "E[benefit]", "E[makespan s]", "secs/benefit"});

  // Synchronous batch rows (Table IV timing: one delay per batch).
  for (int k : {1, 15}) {
    const auto factory =
        k == 1 ? bench::m_arest_factory(false) : bench::pm_arest_factory(k, false);
    const auto mc = core::run_monte_carlo(problem, factory, cfg.runs, budget, cfg.seed);
    util::RunningStat benefit, time;
    for (std::size_t t = 0; t < mc.traces.size(); ++t) {
      benefit.add(mc.traces[t].total_benefit());
      // Same delay distribution as the rolling rows: a synchronous batch
      // waits for its slowest response (E[max of k] ~ H_k * mean).
      time.add(metrics::attack_time_stochastic(
          mc.traces[t], delay, metrics::DelayModel::kExponential,
          util::derive_seed(cfg.seed, 0xF1, t)));
    }
    table.add_row({k == 1 ? "sync sequential (M-AReST)" : "sync batch k=15",
                   util::format_fixed(benefit.mean(), 1),
                   util::format_fixed(time.mean(), 0),
                   util::format_fixed(time.mean() / benefit.mean(), 1)});
  }

  // Rolling-window rows.
  for (int w : {1, 5, 15}) {
    util::RunningStat benefit, time;
    for (int r = 0; r < cfg.runs; ++r) {
      const sim::World world(problem, util::derive_seed(cfg.seed, r));
      core::AsyncAttackOptions opts;
      opts.window = w;
      opts.mean_delay = delay;
      opts.delay_model = core::ResponseDelayModel::kExponential;
      opts.seed = util::derive_seed(cfg.seed, 0xA0 + static_cast<std::uint64_t>(r));
      const auto result = core::run_async_attack(problem, world, opts, budget);
      benefit.add(result.trace.total_benefit());
      time.add(result.makespan_seconds);
    }
    table.add_row({"rolling W=" + std::to_string(w),
                   util::format_fixed(benefit.mean(), 1),
                   util::format_fixed(time.mean(), 0),
                   util::format_fixed(time.mean() / benefit.mean(), 1)});
  }

  bench::emit(table, cfg,
              "Beyond the paper: rolling-window frontier (Enron stand-in, "
              "exp. 5-min delays)");
  std::printf(
      "At equal parallelism (k = W = 15) benefits are statistically similar,\n"
      "but the synchronous batch waits for its slowest response every round\n"
      "(~H_k x mean), while the rolling window never idles: same benefit,\n"
      "a fraction of the wall time. The barrier, not the parallelism, is\n"
      "what costs the synchronous attacker.\n");
  return 0;
}
