// Runtime planner ablation: full PM-AReST campaigns with the dispatch pinned
// to each selector (`--planner fixed:<s>`) versus the cost-model-driven
// `--planner auto`, across batch sizes and graph families, plus a
// million-node binary-substrate variant.
//
// The claim captured in BENCH_planner.json (tools/bench_planner.sh): auto
// lands within a few percent of the best fixed strategy at every (graph, k)
// point — one exploratory batch per non-preferred selector, then the cost
// models converge — and beats the worst fixed strategy outright. The branch
// tree is benchmarked only at small k: its 2^k cost is exactly why a fixed
// wrong choice is expensive and why the planner's closed-form estimate
// refuses it at scale.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "core/attack.h"
#include "core/planner.h"
#include "core/pm_arest.h"
#include "graph/datasets.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "sim/problem.h"
#include "sim/world.h"

namespace {

using namespace recon;

enum class Family { kBa, kEr, kMillionBinary };

sim::Problem make_problem_for(Family family, graph::NodeId n,
                              std::uint64_t seed) {
  sim::ProblemOptions opts;
  opts.num_targets = std::max<std::size_t>(20, n / 50);
  opts.base_acceptance = 0.35;
  opts.seed = seed;
  switch (family) {
    case Family::kBa:
      return sim::make_problem(
          graph::assign_edge_probs(
              graph::barabasi_albert(n, 4, static_cast<int>(seed)),
              graph::EdgeProbModel::uniform(0.3, 0.95), seed + 1),
          opts);
    case Family::kEr:
      return sim::make_problem(
          graph::assign_edge_probs(
              graph::erdos_renyi_gnm(n, 4 * static_cast<graph::EdgeId>(n),
                                     static_cast<int>(seed)),
              graph::EdgeProbModel::uniform(0.2, 0.9), seed + 1),
          opts);
    case Family::kMillionBinary: {
      // The mmap-able CSR substrate: streamed to disk once per process,
      // reopened trusted (no verify) like a production campaign would.
      static std::string path;
      if (path.empty()) {
        path = "/tmp/recon_bench_planner_1m.bin";
        graph::stream_barabasi_albert_binary(
            path, n, 8, graph::EdgeProbModel::uniform(0.3, 0.95), 20170605,
            graph::GraphBinaryWriteOptions{});
      }
      return sim::make_problem(graph::map_graph_binary_file(path), opts);
    }
  }
  return sim::make_problem(graph::barabasi_albert(100, 4, 1), opts);
}

/// Problems are expensive to build (the million-node one especially); cache
/// one per (family, n) for the whole bench process.
const sim::Problem& problem_for(Family family, graph::NodeId n,
                                std::uint64_t seed) {
  static std::map<std::pair<int, graph::NodeId>, std::unique_ptr<sim::Problem>>
      cache;
  const auto key = std::make_pair(static_cast<int>(family), n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, std::make_unique<sim::Problem>(
                               make_problem_for(family, n, seed)))
             .first;
  }
  return *it->second;
}

struct CampaignSpec {
  Family family;
  graph::NodeId n;
  int k;
  double budget_batches;  ///< budget = k * budget_batches
  core::PlannerMode mode;
  core::PlanStrategy fixed;  ///< used when mode == kFixed
};

void run_campaign(benchmark::State& state, const CampaignSpec& spec) {
  const sim::Problem& p = problem_for(spec.family, spec.n, 20170605);
  const sim::World w(p, 42);
  const double budget = static_cast<double>(spec.k) * spec.budget_batches;
  double benefit = 0.0;
  std::uint64_t batches = 0;
  for (auto _ : state) {
    core::PmArestOptions o;
    o.batch_size = spec.k;
    o.allow_retries = true;
    o.planner.mode = spec.mode;
    o.planner.fixed_strategy = spec.fixed;
    core::PmArest strategy(o);
    const auto trace = core::run_attack(p, w, strategy, budget);
    benchmark::DoNotOptimize(trace.batches.size());
    benefit = trace.total_benefit();
    batches = trace.batches.size();
  }
  state.counters["benefit"] = benefit;
  state.counters["batches"] = static_cast<double>(batches);
}

void register_point(const std::string& tag, Family family, graph::NodeId n,
                    int k, double budget_batches, int iterations) {
  struct Variant {
    const char* name;
    core::PlannerMode mode;
    core::PlanStrategy fixed;
  };
  // The branch tree enumerates 2^k branches: benchmarked only where a fixed
  // wrong choice is still finite (small k), skipped everywhere else.
  std::vector<Variant> variants = {
      {"fixed_cached", core::PlannerMode::kFixed,
       core::PlanStrategy::kCollapsedCached},
      {"fixed_uncached", core::PlannerMode::kFixed,
       core::PlanStrategy::kCollapsedUncached},
      {"auto", core::PlannerMode::kAuto, core::PlanStrategy::kCollapsedCached},
  };
  if (k <= 4 && family != Family::kMillionBinary) {
    variants.insert(variants.begin() + 2,
                    {"fixed_tree", core::PlannerMode::kFixed,
                     core::PlanStrategy::kBranchTree});
  }
  for (const Variant& v : variants) {
    const CampaignSpec spec{family, n, k, budget_batches, v.mode, v.fixed};
    auto* b = benchmark::RegisterBenchmark(
        ("BM_PlannerCampaign/" + tag + "/k" + std::to_string(k) + "/" + v.name)
            .c_str(),
        [spec](benchmark::State& state) { run_campaign(state, spec); });
    b->Unit(benchmark::kMillisecond);
    if (iterations > 0) b->Iterations(iterations);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // k sweep on the two synthetic families the paper evaluates.
  for (const int k : {4, 8, 16}) {
    register_point("ba", Family::kBa, 8000, k, 12.0, /*iterations=*/0);
    register_point("er", Family::kEr, 8000, k, 12.0, /*iterations=*/0);
  }
  // Million-node binary substrate: few batches, one iteration — each
  // uncached scoring pass walks ~17M adjacency entries.
  register_point("ba1m", Family::kMillionBinary, 1'000'000, 8, 4.0,
                 /*iterations=*/1);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
