// Fig. 6: BATCHSELECT vs. the exact two-stage-stochastic-program batch
// (SAA + branch-and-bound standing in for CPLEX, DESIGN.md §2.4) on the
// US-Political-Books stand-in, with M-AReST for reference.
//
// Reproduced claim: the optimal batch selection does only marginally better
// than greedy BATCHSELECT — PM-AReST is a near-optimal batch algorithm.
//
// Scenarios are resampled before every batch so only realizations consistent
// with the current partial realization are used (paper Sec. V-A). The paper
// uses 1000 samples per batch; tune with --samples.
#include <memory>

#include "bench/bench_common.h"
#include "solver/strategy_mip.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const auto cfg = bench::BenchConfig::from_args(args);
  const auto samples = static_cast<std::size_t>(args.get_int("samples", 1000));
  const int k = static_cast<int>(args.get_int("k", 4));
  const double budget = args.get_double("budget", 24.0);

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kUsPolBooks, 1.0, cfg.seed);
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed, 0.4, 0.0);

  struct Entry {
    std::string label;
    core::StrategyFactory factory;
  };
  const std::vector<Entry> entries{
      {"M-AReST", bench::m_arest_factory(false)},
      {"BATCHSELECT (PM-AReST)", bench::pm_arest_factory(k, false)},
      {"SAA greedy",
       [&](int) {
         solver::MipStrategyOptions o;
         o.batch_size = k;
         o.scenarios_per_batch = samples;
         o.greedy_only = true;
         return std::make_unique<solver::MipBatchStrategy>(o);
       }},
      {"Exact MIP (SAA B&B)",
       [&](int) {
         solver::MipStrategyOptions o;
         o.batch_size = k;
         o.scenarios_per_batch = samples;
         o.candidate_cap = 30;
         return std::make_unique<solver::MipBatchStrategy>(o);
       }},
      {"Exact L-shaped (Benders)",
       [&](int) {
         solver::MipStrategyOptions o;
         o.batch_size = k;
         o.scenarios_per_batch = samples;
         o.candidate_cap = 30;
         o.use_benders = true;
         return std::make_unique<solver::MipBatchStrategy>(o);
       }},
  };

  util::Table table({"Strategy", "Q@25%K", "Q@50%K", "Q@75%K", "Q@K", "sel secs/run"});
  for (const auto& entry : entries) {
    const auto mc =
        core::run_monte_carlo(problem, entry.factory, cfg.runs, budget, cfg.seed);
    util::SeriesStat stat;
    double sel = 0.0;
    for (const auto& t : mc.traces) {
      stat.add(t.benefit_by_request());
      sel += t.total_select_seconds();
    }
    const auto curve = stat.means();
    std::vector<std::string> row{entry.label};
    for (int frac = 1; frac <= 4; ++frac) {
      const std::size_t idx =
          std::min(curve.size(), static_cast<std::size_t>(budget) * frac / 4) - 1;
      row.push_back(util::format_fixed(curve[idx], 2));
    }
    row.push_back(util::format_sci(sel / static_cast<double>(mc.traces.size())));
    table.add_row(std::move(row));
  }
  bench::emit(table, cfg,
              "Fig. 6: BATCHSELECT vs exact MIP (" + std::to_string(samples) +
                  " samples/batch) on US Pol. Books");
  return 0;
}
