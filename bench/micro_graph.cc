// Microbenchmarks for the graph substrate: generators, CSR construction,
// neighborhood iteration, link-prediction scoring, and world sampling.
#include <benchmark/benchmark.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "linkpred/scores.h"
#include "sim/problem.h"
#include "sim/world.h"

namespace {

using namespace recon;

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::barabasi_albert(n, 8, seed++));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GenerateBarabasiAlbert)->Arg(1000)->Arg(10000);

void BM_GenerateWattsStrogatz(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::watts_strogatz(n, 11, 0.15, seed++));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GenerateWattsStrogatz)->Arg(1000)->Arg(10000);

void BM_CsrBuild(benchmark::State& state) {
  const auto base = graph::barabasi_albert(
      static_cast<graph::NodeId>(state.range(0)), 8, 3);
  for (auto _ : state) {
    graph::GraphBuilder b(base.num_nodes());
    for (graph::EdgeId e = 0; e < base.num_edges(); ++e) {
      b.add_edge(base.edge_u(e), base.edge_v(e), 0.5);
    }
    benchmark::DoNotOptimize(b.build());
  }
  state.SetItemsProcessed(state.iterations() * base.num_edges());
}
BENCHMARK(BM_CsrBuild)->Arg(1000)->Arg(10000);

void BM_NeighborhoodScan(benchmark::State& state) {
  const auto g = graph::barabasi_albert(10000, 8, 3);
  graph::NodeId u = 0;
  for (auto _ : state) {
    double sum = 0.0;
    for (graph::EdgeId e : g.incident_edges(u)) sum += g.edge_prob(e);
    benchmark::DoNotOptimize(sum);
    u = (u + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_NeighborhoodScan);

void BM_LinkPredScore(benchmark::State& state) {
  const auto g = graph::watts_strogatz(5000, 8, 0.1, 3);
  graph::NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linkpred::pair_score(
        g, u, (u + 2) % g.num_nodes(), linkpred::ScoreKind::kAdamicAdar));
    u = (u + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_LinkPredScore);

void BM_WorldSampling(benchmark::State& state) {
  sim::ProblemOptions opts;
  opts.num_targets = 100;
  opts.seed = 5;
  const auto problem = sim::make_problem(
      graph::assign_edge_probs(
          graph::barabasi_albert(static_cast<graph::NodeId>(state.range(0)), 8, 3),
          graph::EdgeProbModel::uniform(0.2, 0.9), 4),
      opts);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::World(problem, seed++));
  }
  state.SetItemsProcessed(state.iterations() * problem.graph.num_edges());
}
BENCHMARK(BM_WorldSampling)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
