// Campaign-service throughput: the resident `recon serve` daemon versus the
// per-process CLI pattern it replaces.
//
// Both variants run the same N campaigns (identical specs, identical
// traces). The daemon keeps the expensive state resident — problems built
// once, one shared ThreadPool, the MPMC injection ring — and runs the
// campaigns concurrently through a CampaignRegistry. The per-process
// variant replays what `for s in ...; do recon attack --seed $s; done`
// costs: every campaign rebuilds its problem from the generator, spins up
// (and tears down) its own thread pool, and runs alone. The gap captured
// in BENCH_serve.json (tools/bench_serve.sh) is the point of the daemon:
// amortized setup plus concurrent drivers over shared immutable state.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "service/registry.h"
#include "sim/problem.h"
#include "sim/trace_io.h"
#include "sim/world.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace recon;

constexpr graph::NodeId kNodes = 4000;
constexpr int kBatch = 4;
constexpr double kBudget = 16.0;  // 4 rounds per campaign

/// The graph-load + problem-build work a fresh CLI process pays on startup.
sim::Problem build_problem(int seed) {
  sim::ProblemOptions opts;
  opts.num_targets = 60;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(kNodes, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.95),
                               static_cast<std::uint64_t>(seed) + 1),
      opts);
}

service::CampaignSpec spec_for(int i) {
  service::CampaignSpec spec;
  spec.problem = "ba";
  spec.batch_size = kBatch;
  spec.budget = kBudget;
  spec.seed = static_cast<std::uint64_t>(1000 + i);
  // Equal durability on both sides: the per-process `recon attack` pattern
  // takes no autosnapshots, so the daemon campaigns disable theirs too
  // (every round would otherwise cost an fsync per generation).
  spec.checkpoint_every_rounds = 0;
  return spec;
}

std::string scratch_dir() {
  char tmpl[] = "/tmp/recon_bench_serve_XXXXXX";
  const char* p = ::mkdtemp(tmpl);
  if (p == nullptr) std::abort();
  return p;
}

/// Daemon mode: one registry stays resident for the whole benchmark
/// (problem built once, pool warm); each iteration submits N campaigns and
/// waits for all of them — concurrent drivers over shared immutable state.
void BM_ServeDaemon(benchmark::State& state) {
  const int campaigns = static_cast<int>(state.range(0));
  static const std::string dir = scratch_dir();
  static service::CampaignRegistry* registry = [] {
    auto* r = new service::CampaignRegistry({dir, 0});
    r->register_problem("ba", build_problem(17));
    return r;
  }();
  double benefit = 0.0;
  for (auto _ : state) {
    std::vector<std::string> ids;
    ids.reserve(static_cast<std::size_t>(campaigns));
    for (int i = 0; i < campaigns; ++i) {
      ids.push_back(registry->submit(spec_for(i)));
    }
    benefit = 0.0;
    for (const std::string& id : ids) {
      const service::CampaignStatus st = registry->wait(id);
      if (st.state != service::CampaignState::kCompleted) std::abort();
      benefit += st.benefit;
    }
  }
  state.counters["campaigns_per_s"] = benchmark::Counter(
      static_cast<double>(campaigns) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["benefit"] = benefit;
}

/// Per-process CLI pattern: every campaign rebuilds the problem from the
/// generator, constructs its own thread pool and strategy, runs alone, and
/// writes its trace file — the cost of `recon attack` once per campaign.
void BM_ServePerProcess(benchmark::State& state) {
  const int campaigns = static_cast<int>(state.range(0));
  static const std::string dir = scratch_dir();
  double benefit = 0.0;
  for (auto _ : state) {
    benefit = 0.0;
    for (int i = 0; i < campaigns; ++i) {
      const sim::Problem p = build_problem(17);  // process startup, every time
      util::ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
      core::PmArestOptions o;
      o.batch_size = kBatch;
      o.pool = &pool;
      core::PmArest strategy(o);
      const sim::World world(
          p, util::derive_seed(static_cast<std::uint64_t>(1000 + i), 0));
      const sim::AttackTrace trace =
          core::run_attack(p, world, strategy, kBudget);
      sim::write_traces_file(dir + "/p" + std::to_string(i) + ".trace",
                             {trace});
      benefit += trace.total_benefit();
    }
  }
  state.counters["campaigns_per_s"] = benchmark::Counter(
      static_cast<double>(campaigns) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["benefit"] = benefit;
}

// UseRealTime: the daemon's work happens on driver threads, so wall clock
// (not the submitting thread's CPU time) is the comparable number, and the
// campaigns_per_s rate counters divide by it.
BENCHMARK(BM_ServeDaemon)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ServePerProcess)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
