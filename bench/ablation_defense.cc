// Ablation: attack detectability vs batch strategy (not a paper table; it
// quantifies the evasion story the paper uses to motivate batch-size limits
// and varying k — Sec. IV-C / Thm. 5 and the Boshmaf / Yang constraints of
// Sec. V).
//
// Detectors: Yang et al. rate limit (20 requests/hour), a batch-uniformity
// pattern detector, and simulation-placed honeypots (Paradise et al.).
#include <memory>

#include "bench/bench_common.h"
#include "defense/detector.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const auto cfg = bench::BenchConfig::from_args(args);
  const double delay = args.get_double("delay", 3600.0);  // one batch per hour

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kEnronEmail, cfg.scale, cfg.seed);
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
  const double budget = bench::fig4_budget(ds);

  const defense::RateLimitDetector rate(20, 3600.0);
  const defense::PatternDetector pattern(4, 5);
  const auto monitors = defense::choose_monitors_by_simulation(
      problem, std::max<std::size_t>(5, problem.graph.num_nodes() / 100), cfg.runs,
      budget, 10, util::derive_seed(cfg.seed, 0xDEF));
  const defense::HoneypotMonitor honeypot(monitors, problem.graph.num_nodes());

  struct Entry {
    std::string label;
    core::StrategyFactory factory;
  };
  std::vector<Entry> entries{
      {"M-AReST (k=1)", bench::m_arest_factory(false)},
      {"PM-AReST k=10", bench::pm_arest_factory(10, false)},
      {"PM-AReST k=25", bench::pm_arest_factory(25, false)},
      {"PM-AReST k~U[5,15]",
       [&](int r) {
         core::PmArestOptions o;
         o.batch_size = 10;
         o.vary_k_min = 5;
         o.vary_k_max = 15;
         o.seed = util::derive_seed(cfg.seed, 0xF00 + static_cast<std::uint64_t>(r));
         return std::make_unique<core::PmArest>(o);
       }},
  };

  util::Table table({"Strategy", "E[benefit]", "rate-det%", "pattern-det%",
                     "honeypot-det%", "E[Q kept vs rate]"});
  for (const auto& entry : entries) {
    const auto mc =
        core::run_monte_carlo(problem, entry.factory, cfg.runs, budget, cfg.seed);
    const auto r = defense::summarize_detection(rate, mc.traces, delay);
    const auto p = defense::summarize_detection(pattern, mc.traces, delay);
    const auto h = defense::summarize_detection(honeypot, mc.traces, delay);
    double mean_q = 0.0;
    for (const auto& t : mc.traces) mean_q += t.total_benefit();
    mean_q /= static_cast<double>(mc.traces.size());
    table.add_row({entry.label, util::format_fixed(mean_q, 1),
                   util::format_fixed(100 * r.detect_fraction, 0),
                   util::format_fixed(100 * p.detect_fraction, 0),
                   util::format_fixed(100 * h.detect_fraction, 0),
                   util::format_fixed(r.mean_benefit_before, 1)});
  }
  bench::emit(table, cfg,
              "Ablation: detectability vs batch strategy (delay between batches = " +
                  util::format_fixed(delay, 0) + "s)");
  std::printf(
      "Rate limit (Yang et al.: >20 req/hour) catches k=25 instantly; varying\n"
      "k defeats the uniformity detector that flags fixed-k PM-AReST.\n");
  return 0;
}
