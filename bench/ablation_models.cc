// Ablations of the modeling choices called out in DESIGN.md:
//  §2.1 — probability-weighted vs paper-literal marginal gain;
//  cost-sensitive selection under heterogeneous request costs (Sec. IV-C);
//  acceptance models: constant vs mutual-friend boost vs attribute
//  similarity (Sec. II-A's q'(u) > q(u) dynamics).
#include <memory>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace {

using namespace recon;

void policy_ablation(const bench::BenchConfig& cfg) {
  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kEnronEmail, cfg.scale, cfg.seed);
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
  const double budget = bench::fig4_budget(ds);

  util::Table table({"Marginal policy", "k", "E[benefit]"});
  for (auto policy :
       {core::MarginalPolicy::kWeighted, core::MarginalPolicy::kPaperLiteral}) {
    for (int k : {5, 15}) {
      const auto mc = core::run_monte_carlo(
          problem,
          [&](int) {
            core::PmArestOptions o;
            o.batch_size = k;
            o.policy = policy;
            return std::make_unique<core::PmArest>(o);
          },
          cfg.runs, budget, cfg.seed);
      table.add_row({policy == core::MarginalPolicy::kWeighted ? "weighted (ours)"
                                                               : "paper-literal",
                     std::to_string(k), util::format_fixed(mc.mean_benefit(), 2)});
    }
  }
  bench::emit(table, cfg, "Ablation A: Bi weighting policy (DESIGN.md §2.1)");
}

void cost_ablation(const bench::BenchConfig& cfg) {
  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kFacebook, cfg.scale, cfg.seed);
  sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
  // Heterogeneous costs: requesting a high-degree user is expensive (the
  // bot must craft a convincing profile); cost = 1 + degree / mean_degree.
  double mean_deg = 0.0;
  for (graph::NodeId u = 0; u < problem.graph.num_nodes(); ++u) {
    mean_deg += problem.graph.degree(u);
  }
  mean_deg /= static_cast<double>(problem.graph.num_nodes());
  problem.cost.resize(problem.graph.num_nodes());
  for (graph::NodeId u = 0; u < problem.graph.num_nodes(); ++u) {
    problem.cost[u] = 1.0 + static_cast<double>(problem.graph.degree(u)) / mean_deg;
  }
  problem.validate();
  const double budget = 2.5 * bench::fig4_budget(ds);

  util::Table table({"Selection rule", "E[benefit]", "E[requests]"});
  for (bool cost_sensitive : {false, true}) {
    const auto mc = core::run_monte_carlo(
        problem,
        [&](int) {
          core::PmArestOptions o;
          o.batch_size = 10;
          o.cost_sensitive = cost_sensitive;
          return std::make_unique<core::PmArest>(o);
        },
        cfg.runs, budget, cfg.seed);
    table.add_row({cost_sensitive ? "Δf/c (cost-sensitive)" : "Δf (cost-blind)",
                   util::format_fixed(mc.mean_benefit(), 2),
                   util::format_fixed(mc.mean_requests(), 1)});
  }
  bench::emit(table, cfg, "Ablation B: generalized cost function (Sec. IV-C)");
}

void acceptance_ablation(const bench::BenchConfig& cfg) {
  graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kFacebook, cfg.scale, cfg.seed);
  ds.graph = graph::assign_attributes(ds.graph, 3, 10, 0.7,
                                      util::derive_seed(cfg.seed, 0xA7));
  const double budget = bench::fig4_budget(ds);

  util::Table table({"Acceptance model", "E[benefit]", "E[accept rate]"});
  struct Case {
    const char* label;
    sim::AcceptanceModel model;
  };
  std::vector<Case> cases;
  cases.push_back({"constant q=0.3", sim::make_constant_acceptance(0.3)});
  {
    auto boosted = sim::make_constant_acceptance(0.3);
    boosted.mutual_boost = 0.15;
    cases.push_back({"mutual boost 0.15", boosted});
  }
  cases.push_back(
      {"attributes w=0.3",
       sim::make_attribute_acceptance(ds.graph, 0.2, 0.3, 0.15,
                                      util::derive_seed(cfg.seed, 0xA8))});

  for (auto& c : cases) {
    sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
    problem.acceptance = c.model;
    problem.validate();
    const auto mc = core::run_monte_carlo(
        problem, bench::pm_arest_factory(10, /*retries=*/true), cfg.runs, budget,
        cfg.seed);
    double accepts = 0.0, requests = 0.0;
    for (const auto& t : mc.traces) {
      accepts += static_cast<double>(t.total_accepts());
      requests += static_cast<double>(t.total_requests());
    }
    table.add_row({c.label, util::format_fixed(mc.mean_benefit(), 2),
                   util::format_fixed(accepts / std::max(1.0, requests), 3)});
  }
  bench::emit(table, cfg, "Ablation C: acceptance dynamics (Sec. II-A)");
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = recon::bench::BenchConfig::from_args(recon::util::Args(argc, argv));
  policy_ablation(cfg);
  cost_ablation(cfg);
  acceptance_ablation(cfg);
  return 0;
}
