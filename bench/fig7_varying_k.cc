// Fig. 7: performance on the Facebook stand-in when the batch size k varies
// uniformly on [5, 15] each step (the detection-evasion variant, Thm. 5),
// compared against fixed-k PM-AReST and M-AReST.
//
// Reproduced claim: varying k costs almost nothing relative to fixed k.
#include <memory>

#include "bench/bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace recon;
  const auto cfg = bench::BenchConfig::from_args(util::Args(argc, argv));

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kFacebook, cfg.scale, cfg.seed);
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
  const double budget = bench::fig4_budget(ds);

  struct Entry {
    std::string label;
    core::StrategyFactory factory;
  };
  const std::vector<Entry> entries{
      {"M-AReST", bench::m_arest_factory(false)},
      {"PM-AReST(k=5)", bench::pm_arest_factory(5, false)},
      {"PM-AReST(k=15)", bench::pm_arest_factory(15, false)},
      {"PM-AReST(k~U[5,15])",
       [&](int r) {
         core::PmArestOptions o;
         o.batch_size = 10;
         o.vary_k_min = 5;
         o.vary_k_max = 15;
         o.seed = util::derive_seed(cfg.seed, 0xF16 + static_cast<std::uint64_t>(r));
         return std::make_unique<core::PmArest>(o);
       }},
  };

  util::Table table({"Strategy", "Q@20%K", "Q@40%K", "Q@60%K", "Q@80%K", "Q@K"});
  for (const auto& entry : entries) {
    const auto mc =
        core::run_monte_carlo(problem, entry.factory, cfg.runs, budget, cfg.seed);
    util::SeriesStat stat;
    for (const auto& t : mc.traces) stat.add(t.benefit_by_request());
    const auto curve = stat.means();
    std::vector<std::string> row{entry.label};
    for (int frac = 1; frac <= 5; ++frac) {
      const std::size_t idx =
          std::min(curve.size(), static_cast<std::size_t>(budget) * frac / 5) - 1;
      row.push_back(util::format_fixed(curve[idx], 1));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, cfg, "Fig. 7: varying batch sizes k~U[5,15] on Facebook");
  return 0;
}
