// Microbenchmarks for the core selection algorithms (google-benchmark):
// marginal gain, collapsed vs branch-tree BATCHSELECT (the DESIGN.md §2.3
// ablation), lazy vs eager greedy, and full batch rounds.
#include <benchmark/benchmark.h>

#include "core/attack.h"
#include "core/batch_select.h"
#include "core/batch_state.h"
#include "core/branch_tree.h"
#include "core/marginal.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/world.h"
#include "sim/problem.h"
#include "util/thread_pool.h"

namespace {

using namespace recon;

sim::Problem bench_problem(graph::NodeId n, graph::NodeId ba_m = 8) {
  sim::ProblemOptions opts;
  opts.num_targets = n / 20;
  opts.base_acceptance = 0.3;
  opts.seed = 99;
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, ba_m, 7),
                               graph::EdgeProbModel::uniform(0.3, 0.9), 8),
      opts);
}

void BM_MarginalGain(benchmark::State& state) {
  const auto problem = bench_problem(static_cast<graph::NodeId>(state.range(0)));
  sim::Observation obs(problem);
  graph::NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::marginal_gain(obs, u, core::MarginalPolicy::kWeighted));
    u = (u + 1) % problem.graph.num_nodes();
  }
}
BENCHMARK(BM_MarginalGain)->Arg(1000)->Arg(10000);

void BM_BatchSelectCollapsed(benchmark::State& state) {
  const auto problem = bench_problem(static_cast<graph::NodeId>(state.range(0)));
  sim::Observation obs(problem);
  core::BatchSelectOptions opts;
  opts.batch_size = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::batch_select(obs, opts));
  }
  state.SetLabel("lazy greedy");
}
BENCHMARK(BM_BatchSelectCollapsed)
    ->Args({1000, 5})
    ->Args({1000, 15})
    ->Args({5000, 15});

void BM_BatchSelectBranchTree(benchmark::State& state) {
  // Exponential in k: keep the graph small and k modest. This is the
  // ablation showing why the collapsed form matters.
  const auto problem = bench_problem(200, 4);
  sim::Observation obs(problem);
  core::BranchTreeOptions opts;
  opts.batch_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::branch_tree_select(obs, opts));
  }
  state.SetLabel("2^k branches");
}
BENCHMARK(BM_BatchSelectBranchTree)->Arg(4)->Arg(8)->Arg(12);

void BM_BatchSelectParallelLazy(benchmark::State& state) {
  // The default parallel path: sharded kernel scoring + merged-frontier lazy
  // pick loop, bit-identical to BM_BatchSelectCollapsed's output. Thread
  // count is range(2); compare against the sequential n=5000,k=15 row for
  // the speedup figure (tools/bench_parallel_select.sh captures both).
  const auto problem = bench_problem(static_cast<graph::NodeId>(state.range(0)));
  sim::Observation obs(problem);
  util::ThreadPool pool(static_cast<unsigned>(state.range(2)));
  core::BatchSelectOptions opts;
  opts.batch_size = static_cast<int>(state.range(1));
  opts.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::batch_select(obs, opts));
  }
  state.SetLabel("parallel lazy greedy");
}
BENCHMARK(BM_BatchSelectParallelLazy)
    ->Args({5000, 15, 1})
    ->Args({5000, 15, 2})
    ->Args({5000, 15, 4})
    ->Args({5000, 15, 8})
    ->Args({20000, 15, 4});

void BM_BatchSelectEagerParallel(benchmark::State& state) {
  const auto problem = bench_problem(2000);
  sim::Observation obs(problem);
  util::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  core::BatchSelectOptions opts;
  opts.batch_size = 15;
  opts.pool = &pool;
  opts.parallel_eager = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::batch_select(obs, opts));
  }
}
BENCHMARK(BM_BatchSelectEagerParallel)->Arg(1)->Arg(4)->Arg(8);

void BM_FullAttackCachedVsUncached(benchmark::State& state) {
  // End-to-end selection cost over a whole attack: the cross-batch cache
  // (state.range(1)) rescores only dirty 2-hop regions.
  const auto problem = bench_problem(static_cast<graph::NodeId>(state.range(0)));
  const bool cached = state.range(1) != 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::PmArestOptions o;
    o.batch_size = 10;
    o.use_cache = cached;
    core::PmArest strategy(o);
    const sim::World world(problem, seed++);
    benchmark::DoNotOptimize(core::run_attack(problem, world, strategy, 100.0));
  }
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_FullAttackCachedVsUncached)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({8000, 0})
    ->Args({8000, 1});

void BM_FullAttackCachedPool(benchmark::State& state) {
  // Cache + pool composition: dirty 2-hop rescores fan out across workers
  // while the pick loop stays sequential (and bit-identical).
  const auto problem = bench_problem(8000);
  util::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::PmArestOptions o;
    o.batch_size = 10;
    o.use_cache = true;
    o.pool = &pool;
    core::PmArest strategy(o);
    const sim::World world(problem, seed++);
    benchmark::DoNotOptimize(core::run_attack(problem, world, strategy, 100.0));
  }
  state.SetLabel("cached+pool");
}
BENCHMARK(BM_FullAttackCachedPool)->Arg(1)->Arg(4);

void BM_BatchStateSelect(benchmark::State& state) {
  const auto problem = bench_problem(5000);
  sim::Observation obs(problem);
  core::BatchState bs(problem.graph.num_nodes());
  graph::NodeId u = 0;
  for (auto _ : state) {
    if (bs.size() >= 64) bs.reset();
    if (!bs.is_selected(u)) bs.select(obs, u, 0.3);
    u = (u + 17) % problem.graph.num_nodes();
  }
}
BENCHMARK(BM_BatchStateSelect);

}  // namespace

BENCHMARK_MAIN();
