// Ablation: myopic adaptive greedy vs two-step lookahead (non-myopic
// selection, core/lookahead.h) on small instances where the depth-2
// expectimax is affordable. The greedy guarantee is worst-case; lookahead
// quantifies how much value one extra step of foresight recovers in
// practice (usually little — adaptive greedy is hard to beat — which is
// itself a finding worth a table).
#include <memory>

#include "bench/bench_common.h"
#include "core/lookahead.h"
#include "util/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace recon;
  const auto cfg = bench::BenchConfig::from_args(util::Args(argc, argv));

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kUsPolBooks, 1.0, cfg.seed);
  util::Table table({"q", "strategy", "E[benefit]", "sel secs/run"});
  for (double q : {0.2, 0.4, 0.7}) {
    const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed, q, 0.0);
    const double budget = 20.0;
    struct Entry {
      const char* label;
      core::StrategyFactory factory;
    };
    const std::vector<Entry> entries{
        {"myopic (M-AReST)", bench::m_arest_factory(false)},
        {"lookahead depth 2",
         [&](int r) {
           core::LookaheadOptions o;
           o.pool = 8;
           o.samples = 32;
           o.seed = util::derive_seed(cfg.seed, 0x10A + static_cast<std::uint64_t>(r));
           return std::make_unique<core::LookaheadStrategy>(o);
         }},
    };
    for (const auto& entry : entries) {
      const auto mc =
          core::run_monte_carlo(problem, entry.factory, cfg.runs, budget, cfg.seed);
      double sel = 0.0;
      for (const auto& t : mc.traces) sel += t.total_select_seconds();
      table.add_row({util::format_fixed(q, 1), entry.label,
                     util::format_fixed(mc.mean_benefit(), 2),
                     util::format_sci(sel / static_cast<double>(mc.traces.size()))});
    }
  }
  bench::emit(table, cfg,
              "Ablation: myopic vs two-step lookahead (US Pol. Books, K=20)");
  std::printf(
      "On these instances lookahead reproduces the myopic choices exactly —\n"
      "independent evidence (alongside Fig. 6's exact-MIP comparison and the\n"
      "optimal_adaptive_value tests) that adaptive greedy is near-optimal\n"
      "for Max-Crawling far beyond its worst-case (1 - 1/e) floor.\n");
  return 0;
}
