// Microbenchmarks for the `#recon-graph v1` binary substrate: text-parse vs
// binary-map load paths, trusted (no-verify) reopen latency, and scoring
// throughput on degree-sorted vs as-built vertex layouts.
//
// "Cold" here means a fully *verified* open — checksum plus structure
// validation touch every payload page, so it bounds the first-open cost on a
// warm page cache. "Trusted" skips both and is the steady-state reopen cost
// (pages fault lazily). tools/bench_graph_substrate.sh captures these into
// BENCH_graph_substrate.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "core/batch_select.h"
#include "graph/datasets.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "sim/observation.h"
#include "sim/problem.h"

namespace {

using namespace recon;

struct SubstrateFiles {
  std::string text;        // edge list, as-built labeling
  std::string keep_bin;    // binary, as-built labeling
  std::string sorted_bin;  // binary, degree-sorted labeling
};

/// Generates the BA(m=8) instance for `n` once per process and materializes
/// all three on-disk forms of it.
const SubstrateFiles& files_for(graph::NodeId n) {
  static std::map<graph::NodeId, SubstrateFiles> cache;
  const auto it = cache.find(n);
  if (it != cache.end()) return it->second;

  SubstrateFiles f;
  const std::string stem = "/tmp/recon_bench_substrate_" + std::to_string(n);
  f.text = stem + ".txt";
  f.keep_bin = stem + "_keep.bin";
  f.sorted_bin = stem + "_sorted.bin";

  graph::GraphBinaryWriteOptions keep;
  keep.layout = graph::GraphLayout::kKeep;
  graph::stream_barabasi_albert_binary(f.keep_bin, n, 8,
                                       graph::EdgeProbModel::uniform(0.2, 0.9),
                                       1234, keep);
  const graph::Graph g = graph::map_graph_binary_file(f.keep_bin);
  graph::write_edge_list_file(f.text, g);
  graph::write_graph_binary_file(f.sorted_bin, g);  // default: degree-sorted
  return cache.emplace(n, std::move(f)).first->second;
}

void BM_LoadTextParse(benchmark::State& state) {
  const auto& f = files_for(static_cast<graph::NodeId>(state.range(0)));
  std::size_t edges = 0;
  for (auto _ : state) {
    const graph::Graph g = graph::read_edge_list_file(f.text);
    edges = g.num_edges();
    benchmark::DoNotOptimize(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_LoadTextParse)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_LoadBinaryVerified(benchmark::State& state) {
  const auto& f = files_for(static_cast<graph::NodeId>(state.range(0)));
  std::size_t edges = 0;
  for (auto _ : state) {
    const graph::Graph g = graph::map_graph_binary_file(f.sorted_bin);
    edges = g.num_edges();
    benchmark::DoNotOptimize(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_LoadBinaryVerified)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_LoadBinaryTrusted(benchmark::State& state) {
  const auto& f = files_for(static_cast<graph::NodeId>(state.range(0)));
  graph::GraphBinaryReadOptions ro;
  ro.verify_checksum = false;
  ro.validate_structure = false;
  std::size_t edges = 0;
  for (auto _ : state) {
    const graph::Graph g = graph::map_graph_binary_file(f.sorted_bin, ro);
    edges = g.num_edges();
    benchmark::DoNotOptimize(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_LoadBinaryTrusted)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

sim::Problem substrate_problem(graph::Graph g) {
  sim::Problem p;
  for (graph::NodeId t = 0; t < g.num_nodes(); t += 50) p.targets.push_back(t);
  p.is_target.assign(g.num_nodes(), 0);
  for (graph::NodeId t : p.targets) p.is_target[t] = 1;
  p.benefit = sim::make_uniform_benefit(g);
  p.acceptance = sim::make_constant_acceptance(0.4);
  p.graph = std::move(g);
  return p;
}

/// One full greedy batch (k=16) from a fresh observation: the scoring pass
/// walks every candidate's adjacency row, so layout locality dominates.
void score_layout(benchmark::State& state, const std::string& path) {
  const sim::Problem p = substrate_problem(graph::map_graph_binary_file(path));
  const sim::Observation obs(p);
  core::BatchSelectOptions options;
  options.batch_size = 16;
  std::size_t selected = 0;
  for (auto _ : state) {
    selected += core::batch_select(obs, options).size();
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.graph.num_edges()));
}

void BM_BatchSelectUnsortedLayout(benchmark::State& state) {
  score_layout(state, files_for(static_cast<graph::NodeId>(state.range(0))).keep_bin);
}
BENCHMARK(BM_BatchSelectUnsortedLayout)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_BatchSelectSortedLayout(benchmark::State& state) {
  score_layout(state, files_for(static_cast<graph::NodeId>(state.range(0))).sorted_bin);
}
BENCHMARK(BM_BatchSelectSortedLayout)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
