// Table III: mean compute time of PM-AReST simulations with K = 300 (scaled
// with the graphs) across batch sizes, with M-AReST as the first row.
//
// The paper's implementation materializes the 2^k-branch expectation tree,
// so its cost grows superlinearly in k (Twitter: 900s -> 2069s -> 8630s for
// k = 5/10/15). This repository's collapsed BATCHSELECT (DESIGN.md §2.3)
// computes identical scores in O(k · deg) — cheaper per batch AND fewer
// selection rounds than M-AReST — so the table has two blocks:
//
//   (A) full simulations with the collapsed selector: the trend inverts
//       (larger k = fewer rounds = less compute) — the repo's improvement;
//   (B) single-batch selection with the literal Alg. 2 branch tree: the
//       paper's exponential-in-k cost, reproduced on a reduced setting.
#include "bench/bench_common.h"
#include "core/branch_tree.h"
#include "sim/observation.h"
#include "util/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const auto cfg = bench::BenchConfig::from_args(args);
  const double budget = args.get_double("budget", 300.0 * cfg.scale / 10.0 + 60.0);

  std::vector<std::pair<std::string, sim::Problem>> problems;
  for (graph::DatasetId id : graph::snap_dataset_ids()) {
    const graph::Dataset ds = graph::make_dataset(id, cfg.scale, cfg.seed);
    problems.emplace_back(ds.name, bench::make_bench_problem(ds, cfg.seed));
  }

  std::vector<std::string> headers{"Batch Size"};
  for (const auto& [name, p] : problems) headers.push_back(name);
  util::Table table(std::move(headers));

  auto separator = [&](const std::string& label) {
    std::vector<std::string> sep{label};
    sep.resize(problems.size() + 1);
    table.add_row(std::move(sep));
  };

  // Block A: full simulations, collapsed selector.
  separator("-- (A) full simulation, collapsed selector, K=" +
            util::format_fixed(budget, 0) + " --");
  auto add_sim_row = [&](const std::string& label, const core::StrategyFactory& factory) {
    std::vector<std::string> row{label};
    for (const auto& [name, problem] : problems) {
      util::RunningStat stat;
      for (int r = 0; r < cfg.runs; ++r) {
        auto strategy = factory(r);
        const sim::World world(problem, util::derive_seed(cfg.seed, r));
        util::WallTimer wall;
        (void)core::run_attack(problem, world, *strategy, budget);
        stat.add(wall.seconds());
      }
      row.push_back(util::format_fixed(stat.mean(), 3));
    }
    table.add_row(std::move(row));
  };
  add_sim_row("M-AReST", bench::m_arest_factory(false));
  for (int k : {5, 10, 15}) {
    add_sim_row(std::to_string(k), bench::pm_arest_factory(k, false));
  }

  // Block B: a single BATCHSELECT call with the literal 2^k expectation tree
  // (the paper's implementation strategy), on reduced-scale networks.
  const double tree_scale = std::min(cfg.scale, 0.3);
  std::vector<std::pair<std::string, sim::Problem>> small;
  for (graph::DatasetId id : graph::snap_dataset_ids()) {
    const graph::Dataset ds = graph::make_dataset(id, tree_scale, cfg.seed);
    small.emplace_back(ds.name, bench::make_bench_problem(ds, cfg.seed));
  }
  separator("-- (B) one batch, literal Alg.2 branch tree, scale=" +
            util::format_fixed(tree_scale, 2) + " --");
  for (int k : {2, 4, 6, 8}) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& [name, problem] : small) {
      const sim::Observation obs(problem);
      core::BranchTreeOptions opts;
      opts.batch_size = k;
      util::WallTimer wall;
      (void)core::branch_tree_select(obs, opts);
      row.push_back(util::format_fixed(wall.seconds(), 3));
    }
    table.add_row(std::move(row));
  }

  // Block C: the literal branch tree again, but with its subtrees fanned out
  // across a worker pool — the paper's exponential cost is what the parallel
  // engine amortizes, which is what makes larger k reachable at all (see
  // EXPERIMENTS.md, "Table III at larger k"). One dataset keeps the smoke
  // runtime sane; batches are bit-identical to block B's at equal k.
  separator("-- (C) one batch, parallel branch tree (first network) --");
  if (!small.empty()) {
    const auto& [cname, cproblem] = small.front();
    for (int k : {8, 10}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        util::ThreadPool pool(threads);
        std::vector<std::string> row{std::to_string(k) + " (T=" +
                                     std::to_string(threads) + ")"};
        const sim::Observation obs(cproblem);
        core::BranchTreeOptions opts;
        opts.batch_size = k;
        opts.pool = &pool;
        util::WallTimer wall;
        (void)core::branch_tree_select(obs, opts);
        row.push_back(util::format_fixed(wall.seconds(), 3));
        row.resize(problems.size() + 1);
        table.add_row(std::move(row));
      }
    }
  }

  bench::emit(table, cfg, "Table III: mean compute time in seconds");
  std::printf(
      "Block B reproduces the paper's superlinear growth in k (its Rust\n"
      "implementation enumerates 2^k branches); block A shows the collapsed\n"
      "selector removes that cost entirely (see tests: identical scores).\n");
  return 0;
}
