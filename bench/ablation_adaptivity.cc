// Theorem 5 checked empirically: the varying-batch strategy achieves
// f(π) >= (1 − e^{−(1−1/e)²}) · f(π*_s) against the optimal sequential
// strategy of the same length. We use M-AReST as a strong proxy for π*_s
// (greedy sequential with the (1 − 1/e) guarantee) and report the measured
// ratio next to the theoretical floor of ≈ 0.3296 across datasets and batch
// configurations. The measured ratios sit far above the floor — the bound is
// loose in practice, exactly as Fig. 4/7 suggest.
#include <memory>

#include "bench/bench_common.h"
#include "core/theory.h"

int main(int argc, char** argv) {
  using namespace recon;
  const auto cfg = bench::BenchConfig::from_args(util::Args(argc, argv));
  const double floor = core::ratio_batch_vs_sequential();

  util::Table table({"Network", "Batch config", "f(batch)", "f(sequential)",
                     "ratio", "Thm.5 floor"});
  for (graph::DatasetId id : graph::snap_dataset_ids()) {
    const graph::Dataset ds = graph::make_dataset(id, cfg.scale, cfg.seed);
    const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
    const double budget = bench::fig4_budget(ds);
    const double sequential =
        core::run_monte_carlo(problem, bench::m_arest_factory(false), cfg.runs,
                              budget, cfg.seed)
            .mean_benefit();
    struct Config {
      std::string label;
      core::StrategyFactory factory;
    };
    const std::vector<Config> configs{
        {"fixed k=15", bench::pm_arest_factory(15, false)},
        {"varying k~U[5,15]",
         [&](int r) {
           core::PmArestOptions o;
           o.batch_size = 10;
           o.vary_k_min = 5;
           o.vary_k_max = 15;
           o.seed = util::derive_seed(cfg.seed, 0xAD + static_cast<std::uint64_t>(r));
           return std::make_unique<core::PmArest>(o);
         }},
    };
    for (const auto& c : configs) {
      const double batch =
          core::run_monte_carlo(problem, c.factory, cfg.runs, budget, cfg.seed)
              .mean_benefit();
      table.add_row({ds.name, c.label, util::format_fixed(batch, 1),
                     util::format_fixed(sequential, 1),
                     util::format_fixed(batch / sequential, 3),
                     util::format_fixed(floor, 3)});
    }
  }
  bench::emit(table, cfg,
              "Thm. 5 empirically: batch vs sequential benefit ratios");
  return 0;
}
