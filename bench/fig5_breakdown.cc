// Fig. 5: breakdown of benefit by source (friends / friends-of-friends /
// revealed edges) on the Twitter stand-in with k = 15, without (a) and with
// (b) retries, comparing M-AReST against PM-AReST.
//
// Reproduced claims: the M-AReST advantage comes mostly from *friend*
// benefit; PM-AReST partially compensates with more FoF benefit; retries
// nearly eliminate the friend-benefit gap.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  const auto cfg = bench::BenchConfig::from_args(util::Args(argc, argv));

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kTwitter, cfg.scale, cfg.seed);
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
  const double budget = bench::fig4_budget(ds);
  const int k = 15;

  util::Table table({"Variant", "Strategy", "Friend B", "FoF B", "Edge B", "Total"});
  for (bool retries : {false, true}) {
    for (bool batch : {false, true}) {
      const auto factory =
          batch ? bench::pm_arest_factory(k, retries) : bench::m_arest_factory(retries);
      const auto mc =
          core::run_monte_carlo(problem, factory, cfg.runs, budget, cfg.seed);
      sim::BenefitBreakdown mean;
      for (const auto& t : mc.traces) mean += t.final_breakdown();
      const double n = static_cast<double>(mc.traces.size());
      table.add_row({retries ? "(b) retries" : "(a) no retries",
                     batch ? "PM-AReST(k=15)" : "M-AReST",
                     util::format_fixed(mean.friends / n, 2),
                     util::format_fixed(mean.fofs / n, 2),
                     util::format_fixed(mean.edges / n, 2),
                     util::format_fixed(mean.total() / n, 2)});
    }
  }
  bench::emit(table, cfg, "Fig. 5: benefit breakdown by source on Twitter, k=15");
  return 0;
}
