// Table I: the evaluation networks. Prints the paper's reported sizes next
// to the synthetic stand-ins actually generated at the current scale, with
// structural diagnostics showing the surrogate matches the topology class.
#include "bench/bench_common.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace recon;
  const auto cfg = bench::BenchConfig::from_args(util::Args(argc, argv));

  util::Table table({"Network", "Paper nodes", "Paper edges", "Gen nodes",
                     "Gen edges", "Mean deg", "Clustering", "Generator"});
  for (graph::DatasetId id : graph::all_dataset_ids()) {
    const graph::Dataset ds = graph::make_dataset(id, cfg.scale, cfg.seed);
    const auto deg = graph::degree_stats(ds.graph);
    const double cc = graph::clustering_coefficient(ds.graph, 20000, cfg.seed);
    table.add_row({ds.name, std::to_string(ds.paper_nodes),
                   std::to_string(ds.paper_edges), std::to_string(ds.graph.num_nodes()),
                   std::to_string(ds.graph.num_edges()), util::format_fixed(deg.mean, 1),
                   util::format_fixed(cc, 3), ds.generator});
  }
  bench::emit(table, cfg, "Table I: networks used in simulations (synthetic stand-ins)");
  return 0;
}
