// Microbenchmarks for the stochastic-programming stack: simplex, SAA
// sampling/evaluation, greedy vs exact FOB, and the LP-based MIP.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/branch_tree.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "solver/benders.h"
#include "solver/fob.h"
#include "solver/mip.h"
#include "solver/saa.h"
#include "solver/simplex.h"
#include "util/rng.h"

namespace {

using namespace recon;

sim::Problem solver_problem(graph::NodeId n) {
  sim::ProblemOptions opts;
  opts.num_targets = n / 4;
  opts.base_acceptance = 0.4;
  opts.seed = 21;
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, n * 3, 13),
                               graph::EdgeProbModel::uniform(0.2, 0.9), 14),
      opts);
}

void BM_SimplexDense(benchmark::State& state) {
  // Random dense LP: n vars, n rows.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  solver::LpProblem lp;
  lp.objective.resize(n);
  for (auto& c : lp.objective) c = rng.uniform(0.0, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<double> row(n);
    for (auto& a : row) a = rng.uniform(0.0, 1.0);
    lp.add_row(std::move(row), solver::RowType::kLe, rng.uniform(1.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_lp(lp));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(20)->Arg(60)->Arg(120);

void BM_SaaSampling(benchmark::State& state) {
  const auto problem = solver_problem(105);
  sim::Observation obs(problem);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver::sample_scenarios(obs, static_cast<std::size_t>(state.range(0)), seed++));
  }
}
BENCHMARK(BM_SaaSampling)->Arg(100)->Arg(1000);

void BM_SaaObjective(benchmark::State& state) {
  const auto problem = solver_problem(105);
  sim::Observation obs(problem);
  const auto scenarios =
      solver::sample_scenarios(obs, static_cast<std::size_t>(state.range(0)), 3);
  const std::vector<graph::NodeId> batch{1, 5, 9, 13};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::saa_objective(obs, scenarios, batch));
  }
}
BENCHMARK(BM_SaaObjective)->Arg(100)->Arg(1000);

void BM_FobGreedy(benchmark::State& state) {
  const auto problem = solver_problem(105);
  sim::Observation obs(problem);
  const auto candidates = solver::fob_candidates(obs, false);
  const auto scenarios = solver::sample_scenarios(obs, 200, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver::fob_greedy(obs, scenarios, static_cast<std::size_t>(state.range(0)),
                           candidates));
  }
}
BENCHMARK(BM_FobGreedy)->Arg(3)->Arg(6);

void BM_FobExact(benchmark::State& state) {
  const auto problem = solver_problem(105);
  sim::Observation obs(problem);
  const auto candidates = solver::fob_candidates(obs, false);
  const auto scenarios = solver::sample_scenarios(obs, 100, 3);
  solver::FobExactOptions opts;
  opts.candidate_cap = 24;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::fob_exact(
        obs, scenarios, static_cast<std::size_t>(state.range(0)), candidates, opts));
  }
}
BENCHMARK(BM_FobExact)->Arg(3)->Arg(4);

void BM_FobBenders(benchmark::State& state) {
  const auto problem = solver_problem(40);
  sim::Observation obs(problem);
  const auto candidates = solver::fob_candidates(obs, false);
  const auto scenarios = solver::sample_scenarios(obs, 100, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_fob_benders(
        obs, scenarios, static_cast<std::size_t>(state.range(0)), candidates));
  }
}
BENCHMARK(BM_FobBenders)->Arg(3)->Arg(4);

void BM_MipLpBnb(benchmark::State& state) {
  const auto problem = solver_problem(14);
  sim::Observation obs(problem);
  const auto candidates = solver::fob_candidates(obs, false);
  const auto scenarios = solver::sample_scenarios(obs, 6, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_fob_mip(obs, scenarios, 2, candidates));
  }
}
BENCHMARK(BM_MipLpBnb);

/// First `size` non-friend nodes: a deterministic batch for the tree benches.
std::vector<graph::NodeId> nonfriend_prefix(const sim::Observation& obs,
                                            std::size_t size) {
  std::vector<graph::NodeId> batch;
  const auto n = obs.problem().graph.num_nodes();
  for (graph::NodeId u = 0; u < n && batch.size() < size; ++u) {
    if (!obs.is_friend(u)) batch.push_back(u);
  }
  return batch;
}

void BM_BranchTreeParallel(benchmark::State& state) {
  // One Γ evaluation over a 2^14-branch expectation tree; arg = worker
  // threads (0 = sequential path, no pool). The returned double is
  // bit-identical across all of these — solver_parallel_test enforces it —
  // so the runs differ only in wall-clock.
  const auto problem = solver_problem(105);
  sim::Observation obs(problem);
  const auto batch = nonfriend_prefix(obs, 15);
  const graph::NodeId target = batch.back();
  const std::vector<graph::NodeId> prefix(batch.begin(), batch.end() - 1);
  const auto threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::branch_tree_gamma(
        obs, prefix, target, core::MarginalPolicy::kWeighted, pool.get()));
  }
}
BENCHMARK(BM_BranchTreeParallel)->Arg(0)->Arg(1)->Arg(2)->Arg(8);

void BM_SaaScenarioParallel(benchmark::State& state) {
  // One SAA objective over 2000 scenarios; arg = worker threads (0 =
  // sequential). Scenario evaluations fan out through parallel_reduce and
  // merge order-insensitively (sorted sum), so the mean is bit-identical.
  const auto problem = solver_problem(105);
  sim::Observation obs(problem);
  const auto scenarios = solver::sample_scenarios(obs, 2000, 3);
  const auto batch = nonfriend_prefix(obs, 6);
  const auto threads = static_cast<unsigned>(state.range(0));
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  const solver::SaaEvalOptions eval{pool.get(), /*antithetic_pairs=*/false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::saa_objective(obs, scenarios, batch, eval));
  }
}
BENCHMARK(BM_SaaScenarioParallel)->Arg(0)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
