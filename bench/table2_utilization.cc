// Table II: mean fraction of available compute power utilized by PM-AReST's
// parallel-eager batch selection, sweeping thread-pool sizes, with K = 300
// and k = 15 (paper setup; K scales with --budget).
//
// Utilization = (sum of worker busy time) / (threads * wall time) — on
// machines with fewer hardware threads than the pool size the absolute
// numbers drop, but the paper's qualitative pattern holds: utilization
// decreases with thread count and is higher on larger networks.
#include <memory>

#include "bench/bench_common.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const auto cfg = bench::BenchConfig::from_args(args);
  const double budget = args.get_double("budget", 300.0 * cfg.scale / 10.0 + 60.0);
  const int k = 15;
  const std::vector<unsigned> thread_counts{5, 10, 15, 20, 25, 30};

  // Build problems once per dataset.
  std::vector<std::pair<std::string, sim::Problem>> problems;
  for (graph::DatasetId id : graph::snap_dataset_ids()) {
    const graph::Dataset ds = graph::make_dataset(id, cfg.scale, cfg.seed);
    problems.emplace_back(ds.name, bench::make_bench_problem(ds, cfg.seed));
  }

  std::vector<std::string> headers{"Threads"};
  for (const auto& [name, p] : problems) headers.push_back(name);
  util::Table table(std::move(headers));

  for (unsigned threads : thread_counts) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const auto& [name, problem] : problems) {
      util::ThreadPool pool(threads);
      core::PmArestOptions o;
      o.batch_size = k;
      o.pool = &pool;
      o.parallel_eager = true;  // the paper's massively-parallel row evaluation
      core::PmArest strategy(o);
      const sim::World world(problem, util::derive_seed(cfg.seed, threads));
      pool.reset_busy_nanos();
      util::WallTimer wall;
      (void)core::run_attack(problem, world, strategy, budget);
      const double elapsed = wall.seconds();
      const double busy = static_cast<double>(pool.busy_nanos()) * 1e-9;
      const double util_frac = busy / (static_cast<double>(threads) * elapsed);
      row.push_back(util::format_fixed(util_frac, 2));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, cfg,
              "Table II: fraction of available compute utilized (K=" +
                  util::format_fixed(budget, 0) + ", k=15)");
  std::printf("note: host has %u hardware thread(s); absolute utilization is\n"
              "bounded by hardware concurrency / pool size, the trend is what\n"
              "the paper reports.\n",
              std::thread::hardware_concurrency());
  return 0;
}
