// Ablation: colluding socialbot fleets (the multiple-attacker extension of
// paper footnote 1). Sweeps the fleet size at a fixed total request budget:
// larger fleets split leverage (each bot accrues fewer mutual friends) but
// send more requests per round.
#include "bench/bench_common.h"
#include "defense/detector.h"
#include "core/multi_attacker.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace recon;
  const util::Args args(argc, argv);
  const auto cfg = bench::BenchConfig::from_args(args);

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kEnronEmail, cfg.scale, cfg.seed);
  // Strong mutual-friend dynamics make the leverage-splitting tradeoff real.
  const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed, 0.25, 0.2);
  const double budget = bench::fig4_budget(ds);
  const int fleet_batch_total = 15;  // requests per fleet round, split evenly

  // Per-identity rate limiting: each bot is a separate account, so the
  // defender's per-account threshold applies to each bot's own request rate
  // (one fleet round per hour).
  const defense::RateLimitDetector rate(10, 3600.0);
  util::Table table({"Fleet size", "k/bot", "E[benefit]", "E[accept rate]",
                     "rounds", "rate-det%"});
  for (int fleet : {1, 3, 5, 15}) {
    core::MultiAttackOptions opts;
    opts.num_attackers = fleet;
    opts.batch_per_attacker = fleet_batch_total / fleet;
    opts.allow_retries = true;
    util::RunningStat benefit, accept_rate, rounds, detected;
    for (int r = 0; r < cfg.runs; ++r) {
      const sim::World world(problem, util::derive_seed(cfg.seed, r));
      const auto result = core::run_multi_attack(problem, world, opts, budget);
      benefit.add(result.combined.total_benefit());
      const double reqs = static_cast<double>(result.combined.total_requests());
      accept_rate.add(reqs > 0 ? static_cast<double>(result.combined.total_accepts()) / reqs
                               : 0.0);
      rounds.add(static_cast<double>(result.combined.batches.size()));
      // The fleet is caught if ANY bot's per-account timeline trips the
      // rate limit.
      bool any = false;
      for (const auto& bt : result.per_bot) {
        any = any || rate.evaluate(bt, 3600.0).detected;
      }
      detected.add(any ? 1.0 : 0.0);
    }
    table.add_row({std::to_string(fleet), std::to_string(opts.batch_per_attacker),
                   util::format_fixed(benefit.mean(), 2),
                   util::format_fixed(accept_rate.mean(), 3),
                   util::format_fixed(rounds.mean(), 1),
                   util::format_fixed(100 * detected.mean(), 0)});
  }
  bench::emit(table, cfg,
              "Ablation: fleet size at fixed per-round request volume (" +
                  std::to_string(fleet_batch_total) + ")");
  std::printf(
      "One bot concentrates mutual-friend leverage but trips the per-account\n"
      "rate limit (>10/hour); splitting identities trades benefit for\n"
      "evasion — the fleet-size dial the defender's thresholds create.\n");
  return 0;
}
