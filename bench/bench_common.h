// Shared harness for the paper-reproduction benches.
//
// Every bench binary prints the table/figure it regenerates in the paper's
// layout, honors RECON_SCALE / RECON_RUNS / RECON_SEED (see util/env.h) and
// the flags --scale, --runs, --seed, --csv PATH.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/attack.h"
#include "core/m_arest.h"
#include "core/pm_arest.h"
#include "graph/datasets.h"
#include "sim/problem.h"
#include "util/env.h"
#include "util/table.h"

namespace recon::bench {

struct BenchConfig {
  double scale = 1.0;
  int runs = 10;
  std::uint64_t seed = 20170605;
  std::string csv_path;  ///< empty = no CSV output

  static BenchConfig from_args(const util::Args& args) {
    BenchConfig cfg;
    cfg.scale = args.get_double("scale", util::bench_scale());
    cfg.runs = static_cast<int>(args.get_int("runs", util::bench_runs()));
    cfg.seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<std::int64_t>(util::bench_seed())));
    cfg.csv_path = args.get("csv", "");
    return cfg;
  }
};

/// The paper's experimental setup on one dataset stand-in: paper benefit
/// model, constant base acceptance, BFS-ball targets sized relative to the
/// network.
inline sim::Problem make_bench_problem(const graph::Dataset& ds, std::uint64_t seed,
                                       double base_acceptance = 0.3,
                                       double mutual_boost = 0.1) {
  sim::ProblemOptions opts;
  opts.num_targets = std::max<std::size_t>(20, ds.graph.num_nodes() / 25);
  opts.target_mode = sim::TargetMode::kBfsBall;
  opts.base_acceptance = base_acceptance;
  opts.mutual_boost = mutual_boost;
  opts.seed = seed;
  return sim::make_problem(ds.graph, opts);
}

/// Strategy factories shared across benches.
inline core::StrategyFactory m_arest_factory(bool retries = false) {
  return [retries](int) {
    core::MArestOptions o;
    o.allow_retries = retries;
    return std::make_unique<core::MArest>(o);
  };
}

inline core::StrategyFactory pm_arest_factory(int k, bool retries = false) {
  return [k, retries](int) {
    core::PmArestOptions o;
    o.batch_size = k;
    o.allow_retries = retries;
    return std::make_unique<core::PmArest>(o);
  };
}

/// Budget used by the Fig. 4 family, scaled down with the graphs so curves
/// stay meaningful at small scale.
inline double fig4_budget(const graph::Dataset& ds) {
  return std::max(60.0, static_cast<double>(ds.graph.num_nodes()) / 25.0);
}

inline void emit(const util::Table& table, const BenchConfig& cfg,
                 const std::string& title) {
  std::printf("=== %s ===\n(scale=%.2g runs=%d seed=%llu)\n\n%s\n", title.c_str(),
              cfg.scale, cfg.runs, static_cast<unsigned long long>(cfg.seed),
              table.to_text().c_str());
  if (!cfg.csv_path.empty()) {
    table.write_csv(cfg.csv_path);
    std::printf("csv written to %s\n", cfg.csv_path.c_str());
  }
}

}  // namespace recon::bench
