// Table IV: expected Real-Time Reconnaissance Resistance Scores (seconds per
// unit benefit) under user response delays d ∈ {0, 5 min, 1 h, 1 day},
// computed exactly as the paper describes: add the delay d between each
// logged batch step of the traces recorded for the Fig. 4 runs.
//
// Reproduced claims: with no delay the sequential M-AReST is fastest (fewer
// wasted requests); with any realistic delay PM-AReST wins by roughly k/x,
// an order of magnitude at k = 15.
#include "bench/bench_common.h"
#include "metrics/rrs.h"

int main(int argc, char** argv) {
  using namespace recon;
  const auto cfg = bench::BenchConfig::from_args(util::Args(argc, argv));

  struct DelayCase {
    const char* label;
    double seconds;
  };
  const std::vector<DelayCase> delays{
      {"No Delay", 0.0}, {"5 minutes", 300.0}, {"1 hour", 3600.0}, {"1 day", 86400.0}};

  // Collect traces once per (network, strategy).
  std::vector<std::string> names;
  std::vector<std::vector<std::vector<sim::AttackTrace>>> traces;  // [strat][net]
  const std::vector<int> ks{0, 5, 10, 15};  // 0 = M-AReST
  traces.resize(ks.size());
  for (graph::DatasetId id : graph::snap_dataset_ids()) {
    const graph::Dataset ds = graph::make_dataset(id, cfg.scale, cfg.seed);
    names.push_back(ds.name);
    const sim::Problem problem = bench::make_bench_problem(ds, cfg.seed);
    const double budget = bench::fig4_budget(ds);
    for (std::size_t s = 0; s < ks.size(); ++s) {
      const auto factory =
          ks[s] == 0 ? bench::m_arest_factory(false) : bench::pm_arest_factory(ks[s], false);
      traces[s].push_back(
          core::run_monte_carlo(problem, factory, cfg.runs, budget, cfg.seed).traces);
    }
  }

  std::vector<std::string> headers{"Delay / Strategy"};
  for (const auto& n : names) headers.push_back(n);
  util::Table table(std::move(headers));
  for (const auto& d : delays) {
    std::vector<std::string> sep{std::string("-- ") + d.label + " --"};
    sep.resize(names.size() + 1);
    table.add_row(std::move(sep));
    for (std::size_t s = 0; s < ks.size(); ++s) {
      std::vector<std::string> row{ks[s] == 0 ? "M-AReST"
                                              : "k = " + std::to_string(ks[s])};
      for (std::size_t n = 0; n < names.size(); ++n) {
        row.push_back(util::format_sci(metrics::rt_rrs(traces[s][n], d.seconds)));
      }
      table.add_row(std::move(row));
    }
  }
  bench::emit(table, cfg,
              "Table IV: RT-RRS (seconds per unit benefit) under response delays");

  // Extension: stochastic per-request delays (a batch completes when its
  // slowest response arrives). The batch advantage shrinks by roughly the
  // expected-maximum factor H_k but remains decisive.
  std::vector<std::string> headers2{"Exp(5min) / Strategy"};
  for (const auto& n : names) headers2.push_back(n);
  util::Table table2(std::move(headers2));
  for (std::size_t s = 0; s < ks.size(); ++s) {
    std::vector<std::string> row{ks[s] == 0 ? "M-AReST"
                                            : "k = " + std::to_string(ks[s])};
    for (std::size_t n = 0; n < names.size(); ++n) {
      row.push_back(util::format_sci(metrics::rt_rrs_stochastic(
          traces[s][n], 300.0, metrics::DelayModel::kExponential,
          util::derive_seed(cfg.seed, s, n))));
    }
    table2.add_row(std::move(row));
  }
  std::printf("%s\n", table2.to_text().c_str());
  return 0;
}
